"""Tests for whole-model quantization."""

import numpy as np
import pytest

from repro.core.model_quantizer import (
    quantize_model,
    quantize_state_dict,
    select_parameters,
)
from repro.core.policy import mixed_precision_policy
from repro.errors import QuantizationError
from repro.models.bert import BertModel
from repro.models.heads import BertForSequenceClassification
from repro.nn.layers import Linear
from repro.nn.module import Module
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def model():
    return BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)


class TestSelectParameters:
    def test_bare_bert(self):
        bert = BertModel(MICRO_CONFIG, rng=0)
        selection = select_parameters(bert)
        assert len(selection.fc_names) == MICRO_CONFIG.num_fc_layers
        assert len(selection.embedding_names) == 3

    def test_head_wrapped_bert_prefixed(self, model):
        selection = select_parameters(model)
        assert all(name.startswith("bert.") for name in selection.fc_names)
        state = model.state_dict()
        for name in selection.fc_names + selection.embedding_names:
            assert name in state

    def test_head_parameters_excluded(self, model):
        selection = select_parameters(model)
        assert not any("classifier" in name for name in selection.fc_names)

    def test_non_bert_model_rejected(self):
        class Plain(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(4, 4, rng=0)

        with pytest.raises(QuantizationError):
            select_parameters(Plain())


class TestQuantizeModel:
    def test_quantizes_fc_and_embeddings(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
        selection = select_parameters(model)
        assert set(quantized.quantized) == set(
            selection.fc_names + selection.embedding_names
        )

    def test_embedding_bits_none_leaves_embeddings(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=None)
        assert not any("embeddings" in name for name in quantized.quantized)
        assert "bert.embeddings.word_embeddings.weight" in quantized.fp32

    def test_embedding_only_scenario(self, model):
        quantized = quantize_model(
            model, weight_bits=3, embedding_bits=4, quantize_weights=False
        )
        assert all("embeddings" in name for name in quantized.quantized)

    def test_state_dict_complete(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
        assert set(quantized.state_dict()) == set(model.state_dict())

    def test_apply_to_round_trips(self, model):
        quantized = quantize_model(model, weight_bits=4, embedding_bits=4)
        probe = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=99)
        quantized.apply_to(probe)
        state = probe.state_dict()
        # Non-quantized params are identical to the source model.
        np.testing.assert_array_equal(
            state["classifier.weight"], model.state_dict()["classifier.weight"]
        )

    def test_original_model_untouched(self, model):
        before = model.state_dict()
        quantize_model(model, weight_bits=2, embedding_bits=2)
        after = model.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_compression_ratios_ordering(self, model):
        q3 = quantize_model(model, weight_bits=3, embedding_bits=4)
        q4 = quantize_model(model, weight_bits=4, embedding_bits=4)
        assert q3.weight_compression_ratio() > q4.weight_compression_ratio()
        # Micro layers carry relatively more table overhead than real BERT.
        assert q3.weight_compression_ratio() > 5.0

    def test_mixed_policy_applied(self, model):
        policy = mixed_precision_policy(1, sensitive_bits=4, default_bits=3)
        quantized = quantize_model(model, weight_bits=policy, embedding_bits=None)
        assert quantized.quantized["bert.encoder.0.attention.value.weight"].bits == 4
        assert quantized.quantized["bert.encoder.1.attention.value.weight"].bits == 3

    def test_outlier_fraction_small(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
        assert 0.0 < quantized.outlier_fraction() < 0.02

    def test_iterations_recorded(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=None)
        assert set(quantized.iterations) == set(quantized.quantized)
        assert all(1 <= it <= 50 for it in quantized.iterations.values())


class TestQuantizeStateDict:
    def test_missing_tensor_rejected(self):
        with pytest.raises(QuantizationError, match="missing"):
            quantize_state_dict({}, fc_names=("absent",))

    def test_passthrough_params_copied(self, model, rng):
        state = model.state_dict()
        selection = select_parameters(model)
        quantized = quantize_state_dict(
            state, fc_names=selection.fc_names[:2], embedding_names=()
        )
        out = quantized.state_dict()
        untouched = selection.fc_names[2]
        np.testing.assert_array_equal(out[untouched], state[untouched])

    def test_model_ratio_covers_weights_and_embeddings(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
        weights_only = quantized.weight_compression_ratio()
        embeddings_only = quantized.embedding_compression_ratio()
        combined = quantized.model_compression_ratio()
        assert min(weights_only, embeddings_only) <= combined <= max(
            weights_only, embeddings_only
        )
