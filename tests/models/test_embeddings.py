"""Tests for BERT input embeddings, incl. the training-noise calibration."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models.embeddings import BertEmbeddings
from tests.conftest import MICRO_CONFIG


@pytest.fixture
def ids(rng):
    return rng.integers(0, MICRO_CONFIG.vocab_size, size=(2, 6))


class TestForward:
    def test_output_shape(self, ids):
        emb = BertEmbeddings(MICRO_CONFIG, rng=0)
        assert emb(ids).shape == (2, 6, MICRO_CONFIG.hidden_size)

    def test_layer_normalized(self, ids):
        emb = BertEmbeddings(MICRO_CONFIG, rng=0)
        out = emb(ids).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros((2, 6)), atol=1e-9)

    def test_position_embeddings_differentiate_positions(self):
        emb = BertEmbeddings(MICRO_CONFIG, rng=0)
        same_token = np.full((1, 4), 7)
        out = emb(same_token).data
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_1d_rejected(self):
        emb = BertEmbeddings(MICRO_CONFIG, rng=0)
        with pytest.raises(ShapeError):
            emb(np.array([1, 2, 3]))

    def test_too_long_rejected(self, rng):
        emb = BertEmbeddings(MICRO_CONFIG, rng=0)
        ids = rng.integers(0, 10, size=(1, MICRO_CONFIG.max_position + 1))
        with pytest.raises(ShapeError):
            emb(ids)


class TestEmbeddingNoise:
    def test_noise_active_in_training_mode(self, ids):
        config = replace(MICRO_CONFIG, embedding_noise_std=0.1)
        emb = BertEmbeddings(config, rng=0)
        emb.train()
        a = emb(ids).data
        b = emb(ids).data
        assert not np.allclose(a, b)

    def test_noise_silent_in_eval_mode(self, ids):
        config = replace(MICRO_CONFIG, embedding_noise_std=0.1)
        emb = BertEmbeddings(config, rng=0)
        emb.eval()
        np.testing.assert_array_equal(emb(ids).data, emb(ids).data)

    def test_zero_noise_deterministic_in_training(self, ids):
        config = replace(MICRO_CONFIG, embedding_noise_std=0.0)
        emb = BertEmbeddings(config, rng=0)
        emb.train()
        np.testing.assert_array_equal(emb(ids).data, emb(ids).data)

    def test_gradients_flow_through_noise(self, ids):
        config = replace(MICRO_CONFIG, embedding_noise_std=0.05)
        emb = BertEmbeddings(config, rng=0)
        emb.train()
        emb(ids).sum().backward()
        assert emb.word_embeddings.weight.grad is not None
