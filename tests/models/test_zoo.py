"""Tests for the model zoo and synthetic weight generation."""

import numpy as np
import pytest

from repro.models.bert import BertModel
from repro.models.config import BERT_BASE
from repro.models.footprint import fc_weight_count
from repro.models.heads import BertForSequenceClassification
from repro.models.zoo import (
    SyntheticWeightSpec,
    build_model,
    embedding_shapes,
    fc_layer_shapes,
    synthetic_layer_weights,
    synthetic_model_weights,
)
from repro.stats import gaussian_overlap, summarize_weights
from tests.conftest import MICRO_CONFIG


class TestBuildModel:
    def test_encoder(self):
        assert isinstance(build_model(MICRO_CONFIG, "encoder"), BertModel)

    def test_classification(self):
        model = build_model(MICRO_CONFIG, "classification", num_labels=4)
        assert isinstance(model, BertForSequenceClassification)
        assert model.num_labels == 4

    def test_by_name(self):
        model = build_model("tiny-bert-base", "regression")
        assert model.config.name == "tiny-bert-base"

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            build_model(MICRO_CONFIG, "translation")


class TestFcLayerShapes:
    def test_bert_base_has_73_layers(self):
        assert len(fc_layer_shapes(BERT_BASE)) == 73

    def test_total_weight_count_matches_census(self):
        total = sum(r * c for _, (r, c) in fc_layer_shapes(BERT_BASE))
        assert total == fc_weight_count(BERT_BASE)

    def test_order_ends_with_pooler(self):
        assert fc_layer_shapes(BERT_BASE)[-1][0] == "pooler.weight"

    def test_names_match_model_parameters(self):
        model = BertModel(MICRO_CONFIG, rng=0)
        zoo_names = [name for name, _ in fc_layer_shapes(MICRO_CONFIG)]
        assert zoo_names == model.fc_parameter_names()

    def test_embedding_shapes(self):
        names = [name for name, _ in embedding_shapes(MICRO_CONFIG)]
        assert names == BertModel(MICRO_CONFIG, rng=0).embedding_parameter_names()


class TestSyntheticWeights:
    def test_shape_and_dtype(self):
        weights = synthetic_layer_weights((64, 32), rng=0)
        assert weights.shape == (64, 32)
        assert weights.dtype == np.float32

    def test_gaussian_bulk(self):
        weights = synthetic_layer_weights((500, 500), SyntheticWeightSpec(std=0.04), rng=0)
        assert gaussian_overlap(weights) > 0.9
        assert summarize_weights(weights).std == pytest.approx(0.04, rel=0.15)

    def test_outlier_fraction_planted(self):
        spec = SyntheticWeightSpec(outlier_fraction=0.01)
        weights = synthetic_layer_weights((300, 300), spec, rng=0)
        # Outliers live beyond outlier_lo_sigma of the nominal std.
        fringe = np.abs(weights) > 4.0 * spec.std
        assert fringe.mean() == pytest.approx(0.01, rel=0.25)

    def test_heavy_tail_raises_kurtosis(self):
        spec = SyntheticWeightSpec(outlier_fraction=0.005)
        weights = synthetic_layer_weights((300, 300), spec, rng=0)
        assert summarize_weights(weights).excess_kurtosis > 0.3

    def test_deterministic(self):
        a = synthetic_layer_weights((10, 10), rng=3)
        b = synthetic_layer_weights((10, 10), rng=3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWeightSpec(outlier_fraction=1.5)
        with pytest.raises(ValueError):
            SyntheticWeightSpec(std=0.0)
        with pytest.raises(ValueError):
            SyntheticWeightSpec(outlier_lo_sigma=5.0, outlier_hi_sigma=4.0)


class TestSyntheticModelWeights:
    def test_yields_every_fc_layer(self):
        layers = list(synthetic_model_weights(MICRO_CONFIG, rng=0))
        assert len(layers) == MICRO_CONFIG.num_fc_layers

    def test_shapes_match_census(self):
        for (name, weights), (expected_name, shape) in zip(
            synthetic_model_weights(MICRO_CONFIG, rng=0), fc_layer_shapes(MICRO_CONFIG)
        ):
            assert name == expected_name
            assert weights.shape == shape

    def test_include_embeddings(self):
        layers = list(synthetic_model_weights(MICRO_CONFIG, rng=0, include_embeddings=True))
        assert len(layers) == MICRO_CONFIG.num_fc_layers + 3

    def test_per_layer_stds_vary(self):
        stds = [w.std() for _, w in synthetic_model_weights(MICRO_CONFIG, rng=0)]
        assert max(stds) / min(stds) > 1.2

    def test_deterministic_per_layer(self):
        a = dict(synthetic_model_weights(MICRO_CONFIG, rng=0))
        b = dict(synthetic_model_weights(MICRO_CONFIG, rng=0))
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
