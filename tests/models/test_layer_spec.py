"""Tests for per-layer synthetic weight profiles."""

import numpy as np
import pytest

from repro.models.zoo import (
    SyntheticWeightSpec,
    layer_spec_for,
    synthetic_layer_for,
    synthetic_model_weights,
)
from tests.conftest import MICRO_CONFIG


class TestLayerSpecFor:
    def test_stds_vary_across_layers(self):
        stds = {
            layer_spec_for(MICRO_CONFIG, position).std
            for position in range(MICRO_CONFIG.num_fc_layers)
        }
        assert len(stds) > 3

    def test_last_layer_has_bigger_fringe(self):
        last = layer_spec_for(MICRO_CONFIG, MICRO_CONFIG.num_fc_layers - 1)
        first = layer_spec_for(MICRO_CONFIG, 0)
        assert last.outlier_fraction > first.outlier_fraction

    def test_base_spec_respected(self):
        base = SyntheticWeightSpec(outlier_fraction=0.005)
        spec = layer_spec_for(MICRO_CONFIG, 0, base)
        assert spec.outlier_fraction == 0.005

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            layer_spec_for(MICRO_CONFIG, MICRO_CONFIG.num_fc_layers)


class TestSyntheticLayerFor:
    def test_matches_model_generator(self):
        from_generator = dict(synthetic_model_weights(MICRO_CONFIG, rng=0))
        for position in (0, 3, MICRO_CONFIG.num_fc_layers - 1):
            name, weights = synthetic_layer_for(MICRO_CONFIG, position, rng=0)
            np.testing.assert_array_equal(weights, from_generator[name])

    def test_accepts_config_name(self):
        name, weights = synthetic_layer_for("tiny-bert-base", 0)
        assert name == "encoder.0.attention.query.weight"
        assert weights.ndim == 2
