"""Tests for the parameter census and Table I/II numbers."""

import pytest

from repro.models.config import BERT_BASE, BERT_LARGE
from repro.models.footprint import (
    MIB,
    architecture_table,
    embedding_table_count,
    fc_weight_count,
    memory_footprint,
    total_parameter_count,
)


class TestPaperNumbers:
    """The footprint numbers the paper reports in Table II."""

    def test_bert_base_embedding_mib(self):
        mib = embedding_table_count(BERT_BASE) * 4 / MIB
        assert mib == pytest.approx(89.42, abs=0.01)

    def test_bert_large_embedding_mib(self):
        mib = embedding_table_count(BERT_LARGE) * 4 / MIB
        assert mib == pytest.approx(119.22, abs=0.01)

    def test_bert_base_weights_mib(self):
        mib = fc_weight_count(BERT_BASE) * 4 / MIB
        assert mib == pytest.approx(326.25, abs=0.05)

    def test_bert_large_weights_gb(self):
        gb = fc_weight_count(BERT_LARGE) * 4 / (1 << 30)
        assert gb == pytest.approx(1.12, abs=0.02)

    def test_total_parameters_match_paper(self):
        # Paper: 110M (Base), 340M (Large).
        assert total_parameter_count(BERT_BASE) / 1e6 == pytest.approx(110, abs=2)
        assert total_parameter_count(BERT_LARGE) / 1e6 == pytest.approx(340, abs=5)


class TestMemoryFootprint:
    def test_input_bytes_per_word(self):
        fp = memory_footprint(BERT_BASE)
        assert fp.input_bytes_per_word == 768 * 4  # 3 KB

    def test_activation_bytes(self):
        fp = memory_footprint(BERT_BASE, sequence_length=128)
        assert fp.activation_bytes == 3072 * 4 * 128  # 1.5 MB
        assert fp.activation_mib == pytest.approx(1.5)

    def test_bert_large_activations(self):
        fp = memory_footprint(BERT_LARGE, sequence_length=128)
        assert fp.activation_mib == pytest.approx(2.0)

    def test_total_bytes_composition(self):
        fp = memory_footprint(BERT_BASE)
        assert fp.total_bytes == fp.embedding_bytes + fp.weight_bytes + fp.activation_bytes

    def test_invalid_sequence_length(self):
        with pytest.raises(ValueError):
            memory_footprint(BERT_BASE, sequence_length=0)


class TestArchitectureTable:
    def test_component_inventory(self):
        table = architecture_table(BERT_BASE)
        components = {spec.component: spec for spec in table}
        assert components["Attention"].count_per_layer == 4
        assert components["Attention"].rows == 768
        assert components["Intermediate"].cols == 3072
        assert components["Output"].rows == 3072

    def test_params_per_layer_sum(self):
        table = architecture_table(BERT_BASE)
        per_layer = sum(
            spec.params_per_layer for spec in table if spec.component != "Pooler"
        )
        pooler = next(s for s in table if s.component == "Pooler").params_per_layer
        assert per_layer * 12 + pooler == fc_weight_count(BERT_BASE)
