"""Tests for the BertModel encoder."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models.bert import BertModel
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def model():
    return BertModel(MICRO_CONFIG, rng=0)


class TestForward:
    def test_output_shapes(self, model, rng):
        ids = rng.integers(0, MICRO_CONFIG.vocab_size, size=(2, 10))
        sequence, pooled = model(ids)
        assert sequence.shape == (2, 10, MICRO_CONFIG.hidden_size)
        assert pooled.shape == (2, MICRO_CONFIG.hidden_size)

    def test_pooled_is_tanh_bounded(self, model, rng):
        ids = rng.integers(0, MICRO_CONFIG.vocab_size, size=(2, 10))
        _, pooled = model(ids)
        assert np.all(np.abs(pooled.data) <= 1.0)

    def test_attention_mask_blocks_padding(self, model, rng):
        ids = rng.integers(1, MICRO_CONFIG.vocab_size, size=(1, 8))
        mask = np.array([[1, 1, 1, 1, 0, 0, 0, 0]])
        seq_a, _ = model(ids, attention_mask=mask)
        ids_b = ids.copy()
        ids_b[0, 4:] = (ids[0, 4:] + 1) % MICRO_CONFIG.vocab_size
        seq_b, _ = model(ids_b, attention_mask=mask)
        np.testing.assert_allclose(seq_a.data[0, :4], seq_b.data[0, :4], atol=1e-10)

    def test_token_type_ids_change_output(self, model, rng):
        ids = rng.integers(0, MICRO_CONFIG.vocab_size, size=(1, 6))
        types = np.zeros((1, 6), dtype=np.int64)
        types_b = types.copy()
        types_b[0, 3:] = 1
        a, _ = model(ids, token_type_ids=types)
        b, _ = model(ids, token_type_ids=types_b)
        assert not np.allclose(a.data, b.data)

    def test_sequence_too_long_rejected(self, model, rng):
        ids = rng.integers(0, MICRO_CONFIG.vocab_size, size=(1, MICRO_CONFIG.max_position + 1))
        with pytest.raises(ShapeError):
            model(ids)

    def test_1d_input_rejected(self, model):
        with pytest.raises(ShapeError):
            model(np.array([1, 2, 3]))


class TestParameterCensus:
    def test_fc_parameter_names_count(self, model):
        # num_layers * 6 + pooler, matching the paper's census.
        expected = MICRO_CONFIG.num_layers * 6 + 1
        assert len(model.fc_parameter_names()) == expected

    def test_fc_names_exist_in_state_dict(self, model):
        state = model.state_dict()
        for name in model.fc_parameter_names():
            assert name in state
            assert state[name].ndim == 2

    def test_embedding_names_exist(self, model):
        state = model.state_dict()
        for name in model.embedding_parameter_names():
            assert name in state

    def test_word_table_shape(self, model):
        state = model.state_dict()
        table = state["embeddings.word_embeddings.weight"]
        assert table.shape == (MICRO_CONFIG.vocab_size, MICRO_CONFIG.hidden_size)


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = BertModel(MICRO_CONFIG, rng=5)
        b = BertModel(MICRO_CONFIG, rng=5)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self):
        a = BertModel(MICRO_CONFIG, rng=5)
        b = BertModel(MICRO_CONFIG, rng=6)
        assert not np.array_equal(
            a.embeddings.word_embeddings.weight.data,
            b.embeddings.word_embeddings.weight.data,
        )

    def test_layers_have_distinct_weights(self):
        model = BertModel(MICRO_CONFIG, rng=0)
        state = model.state_dict()
        assert not np.array_equal(
            state["encoder.0.attention.query.weight"],
            state["encoder.1.attention.query.weight"],
        )
