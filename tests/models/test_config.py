"""Tests for BERT-family configurations."""

import pytest

from repro.errors import ConfigError
from repro.models.config import (
    BERT_BASE,
    BERT_LARGE,
    DISTILBERT,
    ROBERTA_BASE,
    ROBERTA_LARGE,
    TINY_COUNTERPART,
    BertConfig,
    available_configs,
    get_config,
)


class TestPaperDimensions:
    """Table I's exact numbers."""

    def test_bert_base(self):
        assert BERT_BASE.hidden_size == 768
        assert BERT_BASE.num_layers == 12
        assert BERT_BASE.intermediate_size == 3072
        assert BERT_BASE.vocab_size == 30522

    def test_bert_large(self):
        assert BERT_LARGE.hidden_size == 1024
        assert BERT_LARGE.num_layers == 24
        assert BERT_LARGE.intermediate_size == 4096

    def test_fc_layer_counts(self):
        # Paper: 73 = 12*6+1 for Base, 145 = 24*6+1 for Large.
        assert BERT_BASE.num_fc_layers == 73
        assert BERT_LARGE.num_fc_layers == 145

    def test_distilbert_half_depth(self):
        assert DISTILBERT.num_layers == BERT_BASE.num_layers // 2
        assert DISTILBERT.hidden_size == BERT_BASE.hidden_size

    def test_roberta_vocab(self):
        assert ROBERTA_BASE.vocab_size == 50265
        assert ROBERTA_LARGE.hidden_size == 1024


class TestValidation:
    def test_indivisible_heads_rejected(self):
        with pytest.raises(ConfigError):
            BertConfig("bad", 100, 10, 2, 3, 20)

    def test_nonpositive_field_rejected(self):
        with pytest.raises(ConfigError):
            BertConfig("bad", 0, 8, 2, 2, 16)

    def test_scaled_override(self):
        smaller = BERT_BASE.scaled("half", num_layers=6)
        assert smaller.num_layers == 6
        assert smaller.hidden_size == BERT_BASE.hidden_size
        assert smaller.name == "half"


class TestRegistry:
    def test_lookup(self):
        assert get_config("bert-base") is BERT_BASE

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            get_config("bert-huge")

    def test_all_presets_listed(self):
        names = available_configs()
        assert "bert-base" in names and "tiny-roberta" in names

    def test_every_full_scale_model_has_tiny_counterpart(self):
        for full, tiny in TINY_COUNTERPART.items():
            assert get_config(full).family == get_config(tiny).family

    def test_tiny_counterparts_preserve_structure(self):
        tiny_base = get_config(TINY_COUNTERPART["bert-base"])
        tiny_distil = get_config(TINY_COUNTERPART["distilbert"])
        assert tiny_distil.num_layers == tiny_base.num_layers // 2
        tiny_roberta = get_config(TINY_COUNTERPART["roberta-base"])
        assert tiny_roberta.vocab_size > tiny_base.vocab_size
