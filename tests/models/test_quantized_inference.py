"""End-to-end: a quantized BERT forward pass on the compressed representation.

The acceptance bar for the kernels issue: after
:func:`~repro.models.attach_quantized_linears`, a BERT block's forward runs
through :class:`~repro.nn.QuantizedLinear` with *zero*
``quantizer.dequantize_calls`` events — no FP32 weight matrix is ever
materialized — and matches the dequantize-then-load path within tolerance.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.model_quantizer import quantize_model
from repro.errors import QuantizationError
from repro.models import BertModel, attach_quantized_linears
from repro.nn import Linear, QuantizedLinear
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def quantized_setup():
    model = BertModel(MICRO_CONFIG, rng=20260807).eval()
    qmodel = quantize_model(model, weight_bits=3, embedding_bits=4)
    reference = BertModel(MICRO_CONFIG, rng=20260807).eval()
    qmodel.apply_to(reference)  # the decode-then-load baseline
    compressed = attach_quantized_linears(BertModel(MICRO_CONFIG, rng=20260807), qmodel)
    return qmodel, reference, compressed


def micro_inputs():
    rng = np.random.default_rng(7)
    input_ids = rng.integers(0, MICRO_CONFIG.vocab_size, size=(2, 9))
    return input_ids


class TestAttach:
    def test_all_fc_layers_swapped(self, quantized_setup):
        qmodel, _, compressed = quantized_setup
        qlinears = [
            name
            for name, module in compressed.named_modules()
            if isinstance(module, QuantizedLinear)
        ]
        assert len(qlinears) == len(qmodel.fc_names)
        assert "pooler" in qlinears
        assert "encoder.0.attention.query" in qlinears

    def test_model_is_in_eval_mode(self, quantized_setup):
        _, _, compressed = quantized_setup
        assert all(not m.training for _, m in compressed.named_modules())

    def test_forward_matches_dequantize_path(self, quantized_setup):
        _, reference, compressed = quantized_setup
        input_ids = micro_inputs()
        hidden_ref, pooled_ref = reference(input_ids)
        hidden, pooled = compressed(input_ids)
        np.testing.assert_allclose(hidden.data, hidden_ref.data, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(pooled.data, pooled_ref.data, rtol=1e-9, atol=1e-11)

    def test_forward_never_dequantizes(self, quantized_setup):
        """The tentpole assertion: the compressed forward path performs zero
        dequantize() calls and routes every FC matmul through the kernels."""
        qmodel, _, compressed = quantized_setup
        input_ids = micro_inputs()
        with obs.scope() as trace:
            compressed(input_ids)
        names = [event["name"] for event in trace.events]
        assert "quantizer.dequantize_calls" not in names
        assert names.count("kernels.lookup_matmul_calls") == len(qmodel.fc_names)

    def test_baseline_forward_does_not_use_kernels(self, quantized_setup):
        _, reference, _ = quantized_setup
        with obs.scope() as trace:
            reference(micro_inputs())
        assert "kernels.lookup_matmul_calls" not in [e["name"] for e in trace.events]

    def test_fp32_fallback_layer_keeps_its_linear(self):
        model = BertModel(MICRO_CONFIG, rng=3).eval()
        qmodel = quantize_model(model, weight_bits=3, embedding_bits=None)
        dropped = qmodel.fc_names[0]
        fp32 = dict(qmodel.fp32)
        fp32[dropped] = qmodel.quantized[dropped].dequantize(np.float64)
        quantized = {k: v for k, v in qmodel.quantized.items() if k != dropped}
        partial = type(qmodel)(
            quantized=quantized,
            fp32=fp32,
            fc_names=qmodel.fc_names,
            embedding_names=qmodel.embedding_names,
        )
        target = attach_quantized_linears(BertModel(MICRO_CONFIG, rng=3), partial)
        modules = dict(target.named_modules())
        assert isinstance(modules[dropped[: -len(".weight")]], Linear)
        assert isinstance(modules[qmodel.fc_names[1][: -len(".weight")]], QuantizedLinear)

    def test_bad_path_raises(self):
        model = BertModel(MICRO_CONFIG, rng=5).eval()
        qmodel = quantize_model(model, weight_bits=3, embedding_bits=None)
        bogus = type(qmodel)(
            quantized={"encoder.9.attention.query.weight": next(iter(qmodel.quantized.values()))},
            fp32=model.state_dict(),
            fc_names=("encoder.9.attention.query.weight",),
            embedding_names=(),
        )
        with pytest.raises((QuantizationError, KeyError)):
            attach_quantized_linears(BertModel(MICRO_CONFIG, rng=5), bogus)
