"""Tests for the task heads."""

import numpy as np
import pytest

from repro.models.heads import (
    BertForRegression,
    BertForSequenceClassification,
    BertForSpanPrediction,
)
from tests.conftest import MICRO_CONFIG


@pytest.fixture
def ids(rng):
    return rng.integers(0, MICRO_CONFIG.vocab_size, size=(3, 8))


class TestClassification:
    def test_logit_shape(self, ids):
        model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
        assert model(ids).shape == (3, 3)

    def test_predict_returns_classes(self, ids):
        model = BertForSequenceClassification(MICRO_CONFIG, num_labels=5, rng=0)
        preds = model.predict(ids)
        assert preds.shape == (3,)
        assert np.all((preds >= 0) & (preds < 5))

    def test_gradients_flow_to_bert(self, ids):
        model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
        model(ids).sum().backward()
        assert model.bert.pooler.weight.grad is not None


class TestRegression:
    def test_prediction_shape(self, ids):
        model = BertForRegression(MICRO_CONFIG, rng=0)
        assert model(ids).shape == (3,)

    def test_predict_copies(self, ids):
        model = BertForRegression(MICRO_CONFIG, rng=0)
        preds = model.predict(ids)
        preds[:] = 0
        assert not np.array_equal(preds, model.predict(ids))


class TestSpan:
    def test_logit_shapes(self, ids):
        model = BertForSpanPrediction(MICRO_CONFIG, rng=0)
        start, end = model(ids)
        assert start.shape == (3, 8) and end.shape == (3, 8)

    def test_predict_spans_ordered(self, ids):
        model = BertForSpanPrediction(MICRO_CONFIG, rng=0)
        spans = model.predict(ids)
        assert spans.shape == (3, 2)
        assert np.all(spans[:, 1] >= spans[:, 0])

    def test_spans_within_sequence(self, ids):
        model = BertForSpanPrediction(MICRO_CONFIG, rng=0)
        spans = model.predict(ids)
        assert np.all((spans >= 0) & (spans < 8))
