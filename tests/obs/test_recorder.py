"""Tests for the recorder: spans, emits, sinks, scopes, thread context."""

import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leftover_sinks():
    assert obs.installed_sinks() == ()
    yield
    assert obs.installed_sinks() == ()


class TestDefaultOff:
    def test_inactive_without_sinks(self):
        assert not obs.recording_active()

    def test_emits_are_noops_when_inactive(self):
        obs.counter("x")
        obs.gauge("x", 1.0)
        obs.histogram("x", 1.0)
        obs.trace_event("x", [1.0])
        with obs.span("x"):
            pass
        # nothing to assert beyond "did not raise": there is nowhere to record

    def test_span_still_times_when_inactive(self):
        with obs.span("timed") as sp:
            pass
        assert sp.duration >= 0.0


class TestInstallAndRecording:
    def test_install_uninstall(self):
        sink = obs.MemorySink()
        obs.install(sink)
        try:
            assert obs.recording_active()
            obs.counter("hits", 2)
        finally:
            obs.uninstall(sink)
        assert not obs.recording_active()
        assert len(sink.events) == 1
        obs.counter("hits")  # after uninstall: not recorded
        assert len(sink.events) == 1

    def test_uninstall_unknown_sink_is_silent(self):
        obs.uninstall(obs.MemorySink())

    def test_recording_context_closes_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.recording(obs.JsonlSink(path)) as sink:
            obs.counter("c")
        assert sink._handle is None  # closed
        assert path.read_text().count("\n") == 1

    def test_multiple_sinks_all_receive(self):
        first, second = obs.MemorySink(), obs.MemorySink()
        with obs.recording(first), obs.recording(second):
            obs.gauge("g", 5)
        assert len(first.events) == len(second.events) == 1


class TestScope:
    def test_scope_collects_without_sinks(self):
        with obs.scope() as scoped:
            obs.counter("inside")
        obs.counter("outside")
        assert [event["name"] for event in scoped.events] == ["inside"]

    def test_scope_snapshot(self):
        with obs.scope() as scoped:
            obs.counter("bytes", 10)
            obs.counter("bytes", 5)
            obs.gauge("level", 1)
            obs.gauge("level", 7)
        snapshot = scoped.snapshot()
        assert snapshot.counter("bytes") == 15
        assert snapshot.gauge("level") == 7

    def test_nested_scopes_both_see_events(self):
        with obs.scope() as outer:
            with obs.scope() as inner:
                obs.counter("c")
        assert len(outer.events) == 1
        assert len(inner.events) == 1


class TestSpans:
    def test_span_event_emitted_on_exit(self):
        with obs.scope() as scoped:
            with obs.span("work", kind="test"):
                assert scoped.events == []  # not yet emitted
        (event,) = scoped.events
        assert event["event"] == "span"
        assert event["name"] == "work"
        assert event["attrs"] == {"kind": "test"}
        assert event["parent"] is None
        assert event["duration"] >= 0.0

    def test_nesting_sets_parent_and_inherits_attrs(self):
        with obs.scope() as scoped:
            with obs.span("outer", layer="w0"):
                with obs.span("inner", bits=3):
                    obs.counter("deep")
        by_name = {event["name"]: event for event in scoped.events}
        assert by_name["inner"]["parent"] == "outer"
        assert by_name["inner"]["attrs"] == {"layer": "w0", "bits": 3}
        assert by_name["deep"]["parent"] == "inner"
        assert by_name["deep"]["attrs"] == {"layer": "w0", "bits": 3}
        assert by_name["outer"]["parent"] is None

    def test_own_attrs_override_inherited(self):
        with obs.scope() as scoped:
            with obs.span("outer", bits=3):
                obs.counter("c", bits=4)
        by_name = {event["name"]: event for event in scoped.events}
        assert by_name["c"]["attrs"] == {"bits": 4}

    def test_set_merges_attrs_before_emit(self):
        with obs.scope() as scoped:
            with obs.span("work") as sp:
                sp.set(iterations=7)
        assert scoped.events[0]["attrs"] == {"iterations": 7}

    def test_exception_recorded_as_error_attr(self):
        with obs.scope() as scoped:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
        (event,) = scoped.events
        assert event["attrs"]["error"] == "ValueError"

    def test_current_span(self):
        assert obs.current_span() is None
        with obs.span("active") as sp:
            assert obs.current_span() is sp
        assert obs.current_span() is None


class TestThreadContext:
    def test_threads_do_not_inherit_by_default(self):
        parents = []

        def worker():
            with obs.scope() as scoped:
                with obs.span("child"):
                    pass
                parents.append(scoped.events[0]["parent"])

        with obs.span("root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert parents == [None]

    def test_use_context_reattaches_stack(self):
        results = []

        with obs.scope() as scoped:
            with obs.span("root", layer="w1"):
                context = obs.capture_context()

                def worker():
                    with obs.use_context(context):
                        with obs.span("child"):
                            pass
                    results.append(obs.current_span())

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        child = [event for event in scoped.events if event["name"] == "child"][0]
        assert child["parent"] == "root"
        assert child["attrs"] == {"layer": "w1"}
        assert results == [None]  # context restored after the block


class TestValueHandling:
    def test_gauge_drops_non_finite(self):
        with obs.scope() as scoped:
            obs.gauge("ratio", float("inf"))
            obs.gauge("ratio", float("nan"))
            obs.gauge("ratio", 2.5)
        assert len(scoped.events) == 1
        assert scoped.events[0]["value"] == 2.5

    def test_all_events_schema_valid(self):
        with obs.scope() as scoped:
            with obs.span("s", tag="x"):
                obs.counter("c", 2)
                obs.gauge("g", 1.5)
                obs.histogram("h", 0.25)
                obs.trace_event("t", [1, 2, 3], method="gobo")
        assert not obs.validate_events(scoped.events)

    def test_trace_event_coerces_values_to_float(self):
        import numpy as np

        with obs.scope() as scoped:
            obs.trace_event("t", np.array([1, 2], dtype=np.int64))
        assert scoped.events[0]["values"] == [1.0, 2.0]
        assert not obs.validate_events(scoped.events)
