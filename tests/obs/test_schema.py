"""Schema validation and canonicalization for the JSONL trace format."""

import json

import pytest

from repro import obs


def _event(**overrides):
    base = {
        "v": obs.SCHEMA_VERSION,
        "event": "counter",
        "name": "hits",
        "ts": 1700000000.0,
        "parent": None,
        "attrs": {},
        "value": 1.0,
    }
    base.update(overrides)
    for key in [k for k, v in overrides.items() if v is ...]:
        del base[key]
    return base


class TestValidateEvent:
    def test_valid_examples_each_type(self):
        assert not obs.validate_event(_event())
        assert not obs.validate_event(_event(event="gauge"))
        assert not obs.validate_event(_event(event="histogram"))
        assert not obs.validate_event(
            _event(event="span", value=..., duration=0.01, parent="outer")
        )
        assert not obs.validate_event(
            _event(event="trace", value=..., values=[3.0, 2.0, 1.5])
        )

    def test_non_dict_rejected(self):
        assert obs.validate_event([1, 2]) == ["event must be a JSON object, got list"]

    def test_wrong_version(self):
        errors = obs.validate_event(_event(v=2))
        assert any("'v' must be 1" in error for error in errors)

    def test_unknown_event_type(self):
        errors = obs.validate_event(_event(event="metric"))
        assert any("'event' must be one of" in error for error in errors)

    def test_empty_name_rejected(self):
        assert obs.validate_event(_event(name=""))
        assert obs.validate_event(_event(name=7))

    def test_bad_ts(self):
        assert obs.validate_event(_event(ts="now"))
        assert obs.validate_event(_event(ts=float("nan")))

    def test_bad_parent(self):
        assert obs.validate_event(_event(parent=""))
        assert obs.validate_event(_event(parent=3))
        assert not obs.validate_event(_event(parent="engine.run"))

    def test_attr_constraints(self):
        assert obs.validate_event(_event(attrs={"k": [1]}))
        assert obs.validate_event(_event(attrs={"k": float("inf")}))
        assert obs.validate_event(_event(attrs="nope"))
        assert not obs.validate_event(
            _event(attrs={"s": "x", "b": True, "i": 3, "f": 0.5, "n": None})
        )

    def test_unexpected_field_rejected(self):
        errors = obs.validate_event(_event(extra=1))
        assert any("unexpected field 'extra'" in error for error in errors)

    def test_span_duration_constraints(self):
        assert obs.validate_event(_event(event="span", value=..., duration=-0.1))
        assert obs.validate_event(_event(event="span", value=..., duration="fast"))
        # a span must not carry 'value'
        assert obs.validate_event(_event(event="span", duration=0.1))

    def test_trace_values_constraints(self):
        assert obs.validate_event(_event(event="trace", value=..., values="abc"))
        assert obs.validate_event(
            _event(event="trace", value=..., values=[1.0, float("nan")])
        )

    def test_value_must_be_finite(self):
        assert obs.validate_event(_event(value=float("inf")))
        assert obs.validate_event(_event(value=True))
        assert obs.validate_event(_event(value=...))


class TestFileValidation:
    def test_validate_events_prefixes_index(self):
        errors = obs.validate_events([_event(), _event(v=9)])
        assert errors and all(error.startswith("event 1:") for error in errors)

    def test_trace_file_happy_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(_event()) + "\n\n" + json.dumps(_event(name="other")) + "\n"
        )
        assert obs.validate_trace_file(path) == []
        events = obs.read_trace(path)
        assert [event["name"] for event in events] == ["hits", "other"]

    def test_trace_file_reports_line_numbers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_event()) + "\n{not json\n")
        errors = obs.validate_trace_file(path)
        assert len(errors) == 1
        assert errors[0].startswith("line 2: not valid JSON")

    def test_read_trace_raises_on_violation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_event(v=9)) + "\n")
        with pytest.raises(obs.TraceFormatError, match="schema violation"):
            obs.read_trace(path)


class TestCanonical:
    def test_strips_volatile_fields(self):
        event = _event(event="span", value=..., duration=0.5)
        canonical = obs.canonical_event(event)
        assert "ts" not in canonical
        assert "duration" not in canonical
        assert canonical["name"] == "hits"

    def test_sorted_and_order_independent(self):
        first = [_event(name="a"), _event(name="b", ts=1.0)]
        second = [_event(name="b", ts=2.0), _event(name="a", ts=3.0)]
        assert obs.canonical_events(first) == obs.canonical_events(second)

    def test_exclude_names_drops_events(self):
        events = [_event(name="engine.workers", event="gauge"), _event(name="keep")]
        canonical = obs.canonical_events(events, exclude_names=["engine.workers"])
        assert [event["name"] for event in canonical] == ["keep"]

    def test_payload_differences_still_detected(self):
        assert obs.canonical_events([_event(value=1.0)]) != obs.canonical_events(
            [_event(value=2.0)]
        )
