"""Sinks, metric instruments, snapshots and the trace profiler."""

import io
import json

from repro import obs


def _emit_sample():
    """Emit a small representative event stream while a recorder is active."""
    with obs.span("engine.run"):
        with obs.span("engine.layer", layer="w0", bits=3, iterations=5,
                      converged=True, outlier_fraction=0.004,
                      original_bytes=800, compressed_bytes=100):
            obs.trace_event("clustering.l1", [4.0, 3.0, 2.5], method="gobo")
    obs.counter("cache.hit", 2)
    obs.gauge("engine.workers", 4)
    obs.histogram("quantize.iterations", 5)


class TestJsonlSink:
    def test_lines_are_schema_valid_and_byte_stable(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (first, second):
            with obs.recording(obs.JsonlSink(path)):
                obs.counter("hits", 1, ts_like="no")  # attr, not envelope ts
        assert obs.validate_trace_file(first) == []
        canonical = [
            json.dumps(obs.canonical_event(e), sort_keys=True)
            for e in obs.read_trace(first)
        ]
        canonical_second = [
            json.dumps(obs.canonical_event(e), sort_keys=True)
            for e in obs.read_trace(second)
        ]
        assert canonical == canonical_second

    def test_counts_lines_and_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with obs.recording(obs.JsonlSink(path)) as sink:
            obs.counter("a")
            obs.counter("b")
        assert sink.lines == 2
        assert path.read_text().count("\n") == 2

    def test_emit_after_close_is_noop(self, tmp_path):
        sink = obs.JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        sink.emit({"v": 1})
        assert sink.lines == 0


class TestSummarySink:
    def test_renders_table_on_close(self):
        stream = io.StringIO()
        sink = obs.SummarySink(stream=stream)
        with obs.recording(sink):
            _emit_sample()
        output = stream.getvalue()
        assert "Per-layer trace profile" in output
        assert "w0" in output
        assert "cache.hit" in output

    def test_close_prints_once(self):
        stream = io.StringIO()
        sink = obs.SummarySink(stream=stream)
        with obs.recording(sink):
            obs.counter("c")
        length = len(stream.getvalue())
        sink.close()
        assert len(stream.getvalue()) == length

    def test_empty_summary(self):
        stream = io.StringIO()
        sink = obs.SummarySink(stream=stream)
        sink.close()
        assert "(no engine.layer spans in trace)" in stream.getvalue()


class TestInstruments:
    def test_counter_gauge_histogram_emit_named_events(self):
        hits = obs.Counter("cache.hit", backend="disk")
        depth = obs.Gauge("queue.depth")
        sizes = obs.Histogram("payload.bytes")
        with obs.scope() as scoped:
            hits.inc()
            hits.inc(3, backend="mem")
            depth.set(7)
            sizes.observe(128)
            sizes.observe(512)
        snapshot = scoped.snapshot()
        assert snapshot.counter("cache.hit") == 4
        assert snapshot.gauge("queue.depth") == 7
        assert snapshot.histogram("payload.bytes").count == 2
        by_value = {e["value"]: e["attrs"] for e in scoped.events if e["name"] == "cache.hit"}
        assert by_value[1.0] == {"backend": "disk"}
        assert by_value[3.0] == {"backend": "mem"}  # call attrs win

    def test_instruments_are_noops_when_inactive(self):
        obs.Counter("c").inc()
        obs.Gauge("g").set(1)
        obs.Histogram("h").observe(1)


class TestMetricsSnapshot:
    def test_aggregation_rules(self):
        with obs.scope() as scoped:
            _emit_sample()
        snapshot = obs.MetricsSnapshot.from_events(scoped.events)
        assert snapshot.events == len(scoped.events)
        assert snapshot.span("engine.run").count == 1
        assert snapshot.span("engine.layer").count == 1
        assert snapshot.counter("cache.hit") == 2
        assert snapshot.counter("missing", default=-1.0) == -1.0
        assert snapshot.gauge("engine.workers") == 4
        assert snapshot.gauge("missing") is None
        histogram = snapshot.histogram("quantize.iterations")
        assert (histogram.count, histogram.mean) == (1, 5.0)
        assert snapshot.histogram("missing").count == 0
        assert snapshot.span("missing").mean_seconds == 0.0

    def test_render_lists_every_section(self):
        with obs.scope() as scoped:
            _emit_sample()
        rendered = scoped.snapshot().render()
        for section in ("Spans", "Counters", "Gauges", "Histograms"):
            assert section in rendered

    def test_render_empty(self):
        assert obs.MetricsSnapshot().render() == "(no metrics recorded)"


class TestProfile:
    def test_layer_rows_join_trajectory_by_layer_attr(self):
        with obs.scope() as scoped:
            _emit_sample()
        (row,) = obs.layer_rows(scoped.events)
        assert row["layer"] == "w0"
        assert row["bits"] == 3
        assert row["l1_trajectory"] == [4.0, 3.0, 2.5]
        assert row["seconds"] >= 0.0

    def test_layer_table_contents(self):
        with obs.scope() as scoped:
            _emit_sample()
        table = obs.layer_table(scoped.events)
        assert "w0" in table
        assert "8.00x" in table  # 800 / 100
        assert "0.400%" in table  # outlier fraction
        assert "2.5" in table  # min of the trajectory

    def test_layer_table_handles_missing_attrs(self):
        events = [{
            "v": 1, "event": "span", "name": "engine.layer", "ts": 0.0,
            "parent": "engine.run", "attrs": {"layer": "bare"}, "duration": 0.0,
        }]
        table = obs.layer_table(events)
        assert "bare" in table
        assert "-" in table  # missing bits / ratio / trajectory

    def test_empty_trace(self):
        assert obs.layer_table([]) == "(no engine.layer spans in trace)"

    def test_profile_trace_end_to_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.recording(obs.JsonlSink(path)):
            _emit_sample()
        rendered = obs.profile_trace(path)
        assert "Per-layer trace profile" in rendered
        assert "engine runs: 1" in rendered
        assert "Gauges" in rendered
