"""Tests for the vocabulary."""

import pytest

from repro.tokenization.vocab import CLS, PAD, SEP, SPECIAL_TOKENS, UNK, Vocabulary


class TestVocabulary:
    def test_pad_is_id_zero(self):
        assert Vocabulary(["a"]).pad_id == 0

    def test_specials_first(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.tokens()[: len(SPECIAL_TOKENS)] == list(SPECIAL_TOKENS)

    def test_lookup_round_trip(self):
        vocab = Vocabulary(["apple", "pear"])
        assert vocab.token_of(vocab.id_of("pear")) == "pear"

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["a"])
        assert vocab.id_of("zzz") == vocab.unk_id

    def test_duplicates_collapsed(self):
        assert len(Vocabulary(["a", "a", "b"])) == len(SPECIAL_TOKENS) + 2

    def test_special_duplicate_ignored(self):
        vocab = Vocabulary([PAD, "a"])
        assert len(vocab) == len(SPECIAL_TOKENS) + 1

    def test_contains(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab and CLS in vocab and "y" not in vocab

    def test_token_of_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary(["a"]).token_of(99)

    def test_special_ids_distinct(self):
        vocab = Vocabulary([])
        ids = {vocab.pad_id, vocab.unk_id, vocab.cls_id, vocab.sep_id}
        assert len(ids) == 4
