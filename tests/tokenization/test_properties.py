"""Property-based tests for the tokenizer encoding invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenization.tokenizer import Tokenizer
from repro.tokenization.vocab import Vocabulary

WORDS = [f"w{i}" for i in range(30)]
TOKENIZER = Tokenizer(Vocabulary(WORDS))

sentence = st.lists(st.sampled_from(WORDS), min_size=0, max_size=20).map(" ".join)


@given(text_a=sentence, text_b=st.one_of(st.none(), sentence),
       max_length=st.integers(min_value=6, max_value=40))
@settings(max_examples=80, deadline=None)
def test_encoding_invariants(text_a, text_b, max_length):
    encoding = TOKENIZER.encode(text_a, text_b, max_length=max_length)
    ids = encoding.input_ids
    mask = encoding.attention_mask
    segments = encoding.token_type_ids
    vocab = TOKENIZER.vocab

    # Fixed length, always.
    assert ids.shape == mask.shape == segments.shape == (max_length,)
    # [CLS] leads; real tokens form a contiguous prefix under the mask.
    assert ids[0] == vocab.cls_id
    real = int(mask.sum())
    assert np.all(mask[:real] == 1) and np.all(mask[real:] == 0)
    # Padding is [PAD] with segment 0.
    assert np.all(ids[real:] == vocab.pad_id)
    assert np.all(segments[real:] == 0)
    # The last real token is [SEP].
    assert ids[real - 1] == vocab.sep_id
    # Segments are 0 then 1, never interleaved.
    transitions = np.diff(segments[:real])
    assert np.all(transitions >= 0)
    # Pair encodings contain exactly two [SEP]s (when B survives truncation).
    sep_count = int((ids[:real] == vocab.sep_id).sum())
    if text_b is None:
        assert sep_count == 1
    else:
        assert sep_count in (1, 2)
    # No token id out of range.
    assert ids.max() < len(vocab)


@given(texts=st.lists(st.tuples(sentence, st.one_of(st.none(), sentence)),
                      min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_batch_consistency(texts):
    batch = TOKENIZER.encode_batch(texts, max_length=24)
    for i, (a, b) in enumerate(texts):
        single = TOKENIZER.encode(a, b, max_length=24)
        np.testing.assert_array_equal(batch.input_ids[i], single.input_ids)
        np.testing.assert_array_equal(batch.token_type_ids[i], single.token_type_ids)
