"""Tests for the tokenizer encoding layout."""

import numpy as np
import pytest

from repro.tokenization.tokenizer import Tokenizer
from repro.tokenization.vocab import Vocabulary


@pytest.fixture
def tokenizer():
    return Tokenizer(Vocabulary([f"w{i}" for i in range(20)]))


class TestSingleSentence:
    def test_layout(self, tokenizer):
        enc = tokenizer.encode("w1 w2", max_length=8)
        vocab = tokenizer.vocab
        assert enc.input_ids[0] == vocab.cls_id
        assert enc.input_ids[3] == vocab.sep_id
        assert enc.input_ids[4] == vocab.pad_id

    def test_attention_mask(self, tokenizer):
        enc = tokenizer.encode("w1 w2", max_length=8)
        np.testing.assert_array_equal(enc.attention_mask, [1, 1, 1, 1, 0, 0, 0, 0])

    def test_segments_all_zero(self, tokenizer):
        enc = tokenizer.encode("w1 w2", max_length=8)
        assert np.all(enc.token_type_ids == 0)

    def test_fixed_length(self, tokenizer):
        enc = tokenizer.encode("w1", max_length=16)
        assert enc.input_ids.shape == (16,)


class TestSentencePair:
    def test_layout(self, tokenizer):
        enc = tokenizer.encode("w1 w2", "w3", max_length=10)
        vocab = tokenizer.vocab
        ids = enc.input_ids
        assert ids[0] == vocab.cls_id
        assert ids[3] == vocab.sep_id
        assert ids[5] == vocab.sep_id

    def test_segment_ids(self, tokenizer):
        enc = tokenizer.encode("w1 w2", "w3", max_length=10)
        np.testing.assert_array_equal(
            enc.token_type_ids[:6], [0, 0, 0, 0, 1, 1]
        )

    def test_truncates_longer_side_first(self, tokenizer):
        text_a = " ".join(f"w{i}" for i in range(10))
        enc = tokenizer.encode(text_a, "w1 w2", max_length=10)
        # 10 slots - 3 specials = 7 words; the longer A side is cut to 5.
        assert enc.attention_mask.sum() == 10

    def test_unknown_words_map_to_unk(self, tokenizer):
        enc = tokenizer.encode("zzz", max_length=6)
        assert enc.input_ids[1] == tokenizer.vocab.unk_id

    def test_max_length_too_small_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.encode("w1", max_length=3)


class TestBatch:
    def test_stacked_shapes(self, tokenizer):
        enc = tokenizer.encode_batch([("w1", "w2"), ("w3", None)], max_length=8)
        assert enc.input_ids.shape == (2, 8)
        assert enc.attention_mask.shape == (2, 8)
        assert enc.token_type_ids.shape == (2, 8)

    def test_batch_matches_single(self, tokenizer):
        single = tokenizer.encode("w1 w2", "w3", max_length=8)
        batch = tokenizer.encode_batch([("w1 w2", "w3")], max_length=8)
        np.testing.assert_array_equal(batch.input_ids[0], single.input_ids)
