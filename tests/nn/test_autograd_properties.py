"""Property-based autograd checks: random expressions vs numeric gradients."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.conftest import assert_autograd_matches

# Each op gets a closure building a scalar from a (3, 4) tensor.
_SAFE_OPS = {
    "sum_of_squares": lambda t: (t * t).sum(),
    "softmax_weighted": lambda t: (F.softmax(t) * F.softmax(t)).sum(),
    "gelu_sum": lambda t: F.gelu(t).sum(),
    "tanh_mean": lambda t: t.tanh().mean(),
    "row_max": lambda t: t.max(axis=1).sum(),
    "reshaped": lambda t: (t.reshape(4, 3) ** 2).mean(),
    "sliced": lambda t: (t[1:, ::2] * 3.0).sum(),
    "log_softmax_first": lambda t: F.log_softmax(t, axis=0)[0].sum(),
    "sigmoid_product": lambda t: (F.sigmoid(t) * t).sum(),
    "transposed_matmul": lambda t: (t @ t.swapaxes(0, 1)).sum(),
}


@given(
    op=st.sampled_from(sorted(_SAFE_OPS)),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_random_expressions_match_numeric_gradient(op, seed):
    x = np.random.default_rng(seed).normal(size=(3, 4))
    assert_autograd_matches(_SAFE_OPS[op], x, atol=1e-5)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_composed_pipeline_gradient(seed):
    """A small attention-like pipeline: matmul -> softmax -> weighted sum."""
    rng = np.random.default_rng(seed)
    keys = Tensor(rng.normal(size=(4, 5)))
    values = Tensor(rng.normal(size=(4, 2)))

    def pipeline(queries: Tensor):
        scores = queries @ keys.swapaxes(0, 1)
        probs = F.softmax(scores, axis=-1)
        return (probs @ values).sum()

    assert_autograd_matches(pipeline, rng.normal(size=(3, 5)), atol=1e-5)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_layer_norm_gradient_property(seed):
    rng = np.random.default_rng(seed)
    weight = Tensor(rng.normal(1.0, 0.2, 6))
    bias = Tensor(rng.normal(0.0, 0.2, 6))
    assert_autograd_matches(
        lambda t: (F.layer_norm(t, weight, bias) ** 2).sum(),
        rng.normal(size=(2, 6)),
        atol=1e-4,
    )
