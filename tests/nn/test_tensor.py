"""Autograd engine tests: every op checked against numeric gradients."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.tensor import Tensor, as_tensor, concat, stack
from tests.conftest import assert_autograd_matches


class TestBasics:
    def test_shape_and_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3) and t.size == 6 and t.ndim == 2

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_item_non_scalar_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(np.zeros(3)).item()

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_backward_needs_scalar_without_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ShapeError):
            t.backward()

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t

    def test_as_tensor_from_list(self):
        assert as_tensor([1.0, 2.0]).shape == (2,)

    def test_repr(self):
        assert "requires_grad=True" in repr(Tensor(np.ones(1), requires_grad=True))


class TestArithmeticGradients:
    def test_add(self, rng):
        x = rng.normal(size=(3, 4))
        assert_autograd_matches(lambda t: (t + 2.0).sum(), x)

    def test_add_broadcast(self, rng):
        x = rng.normal(size=(3, 1))
        other = Tensor(rng.normal(size=(3, 4)))
        assert_autograd_matches(lambda t: (t + other).sum(), x)

    def test_mul(self, rng):
        x = rng.normal(size=(2, 5))
        other = Tensor(rng.normal(size=(2, 5)))
        assert_autograd_matches(lambda t: (t * other).sum(), x)

    def test_mul_both_require_grad(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_sub_and_neg(self, rng):
        x = rng.normal(size=4)
        assert_autograd_matches(lambda t: (3.0 - t).sum(), x)

    def test_div(self, rng):
        x = rng.normal(size=4) + 3.0
        assert_autograd_matches(lambda t: (1.0 / t).sum(), x, atol=1e-5)

    def test_div_by_tensor(self, rng):
        x = rng.normal(size=4)
        denom = Tensor(rng.normal(size=4) + 5.0)
        assert_autograd_matches(lambda t: (t / denom).sum(), x)

    def test_pow(self, rng):
        x = np.abs(rng.normal(size=4)) + 0.5
        assert_autograd_matches(lambda t: (t**3).sum(), x, atol=1e-4)

    def test_sqrt(self, rng):
        x = np.abs(rng.normal(size=4)) + 1.0
        assert_autograd_matches(lambda t: t.sqrt().sum(), x, atol=1e-5)

    def test_pow_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_gradient_accumulates_across_uses(self, rng):
        x = Tensor(rng.normal(size=3), requires_grad=True)
        ((x * 2).sum() + (x * 3).sum()).backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))


class TestMatmulGradients:
    def test_2d(self, rng):
        x = rng.normal(size=(3, 4))
        other = Tensor(rng.normal(size=(4, 2)))
        assert_autograd_matches(lambda t: t.matmul(other).sum(), x)

    def test_2d_right_operand(self, rng):
        x = rng.normal(size=(4, 2))
        left = Tensor(rng.normal(size=(3, 4)))
        assert_autograd_matches(lambda t: left.matmul(t).sum(), x)

    def test_batched(self, rng):
        x = rng.normal(size=(2, 3, 4))
        other = Tensor(rng.normal(size=(2, 4, 5)))
        assert_autograd_matches(lambda t: (t @ other).sum(), x)

    def test_broadcast_batch(self, rng):
        x = rng.normal(size=(4, 5))  # broadcast against batched left side
        left = Tensor(rng.normal(size=(2, 3, 4)))
        assert_autograd_matches(lambda t: (left @ t).sum(), x)


class TestReductionGradients:
    def test_sum_all(self, rng):
        assert_autograd_matches(lambda t: t.sum(), rng.normal(size=(2, 3)))

    def test_sum_axis(self, rng):
        x = rng.normal(size=(2, 3))
        assert_autograd_matches(lambda t: (t.sum(axis=1) ** 2).sum(), x)

    def test_sum_keepdims(self, rng):
        x = rng.normal(size=(2, 3))
        assert_autograd_matches(lambda t: (t.sum(axis=0, keepdims=True) ** 2).sum(), x)

    def test_mean(self, rng):
        x = rng.normal(size=(4, 3))
        assert_autograd_matches(lambda t: (t.mean(axis=1) ** 2).sum(), x)

    def test_mean_all(self, rng):
        assert_autograd_matches(lambda t: t.mean() * 2.0, rng.normal(size=(3, 3)))

    def test_max(self, rng):
        x = rng.normal(size=(3, 5))
        assert_autograd_matches(lambda t: t.max(axis=1).sum(), x)

    def test_max_keepdims_value(self, rng):
        x = rng.normal(size=(2, 4))
        out = Tensor(x).max(axis=1, keepdims=True)
        np.testing.assert_allclose(out.data, x.max(axis=1, keepdims=True))

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])


class TestShapeGradients:
    def test_reshape(self, rng):
        x = rng.normal(size=(2, 6))
        assert_autograd_matches(lambda t: (t.reshape(3, 4) ** 2).sum(), x)

    def test_reshape_tuple_arg(self, rng):
        x = rng.normal(size=(2, 6))
        out = Tensor(x).reshape((4, 3))
        assert out.shape == (4, 3)

    def test_transpose(self, rng):
        x = rng.normal(size=(2, 3, 4))
        other = Tensor(rng.normal(size=(4, 3, 2)))
        assert_autograd_matches(lambda t: (t.transpose(2, 1, 0) * other).sum(), x)

    def test_transpose_default_reverses(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        assert x.transpose().shape == (3, 2)

    def test_swapaxes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        other = Tensor(rng.normal(size=(2, 4, 3)))
        assert_autograd_matches(lambda t: (t.swapaxes(1, 2) * other).sum(), x)

    def test_getitem(self, rng):
        x = rng.normal(size=(4, 5))
        assert_autograd_matches(lambda t: (t[1:3, ::2] ** 2).sum(), x)

    def test_getitem_fancy_duplicate_indices(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0, 0.0, 0.0])


class TestElementwiseGradients:
    def test_exp(self, rng):
        assert_autograd_matches(lambda t: t.exp().sum(), rng.normal(size=5), atol=1e-5)

    def test_log(self, rng):
        x = np.abs(rng.normal(size=5)) + 0.5
        assert_autograd_matches(lambda t: t.log().sum(), x, atol=1e-5)

    def test_tanh(self, rng):
        assert_autograd_matches(lambda t: t.tanh().sum(), rng.normal(size=5))


class TestConcatStack:
    def test_concat_values(self, rng):
        a, b = Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(1, 3)))
        out = concat([a, b], axis=0)
        assert out.shape == (3, 3)

    def test_concat_gradients(self, rng):
        x = rng.normal(size=(2, 3))
        other = Tensor(rng.normal(size=(2, 3)))
        assert_autograd_matches(lambda t: (concat([t, other], axis=1) ** 2).sum(), x)

    def test_concat_empty_rejected(self):
        with pytest.raises(ShapeError):
            concat([])

    def test_stack_values(self, rng):
        a, b = Tensor(rng.normal(size=3)), Tensor(rng.normal(size=3))
        assert stack([a, b], axis=0).shape == (2, 3)

    def test_stack_gradients(self, rng):
        x = rng.normal(size=(3,))
        other = Tensor(rng.normal(size=3))
        assert_autograd_matches(lambda t: (stack([t, other]) ** 2).sum(), x)

    def test_stack_empty_rejected(self):
        with pytest.raises(ShapeError):
            stack([])


class TestGraphMechanics:
    def test_deep_chain_backward_iterative(self):
        # A graph deep enough to break recursive backprop.
        x = Tensor(np.ones(1), requires_grad=True)
        out = x
        for _ in range(2000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph(self, rng):
        x = rng.normal(size=3)
        assert_autograd_matches(lambda t: ((t * 2) + (t * 3)).sum(), x)

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None
