"""Tests for multi-head self-attention."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.tensor import Tensor


@pytest.fixture
def attention():
    return MultiHeadSelfAttention(hidden_size=16, num_heads=4, rng=0)


class TestConstruction:
    def test_four_fc_layers(self, attention):
        # Table I: attention contributes 4 hidden x hidden FC layers.
        names = {name for name, _ in attention.named_parameters()}
        for fc in ("query", "key", "value", "output"):
            assert f"{fc}.weight" in names and f"{fc}.bias" in names

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ConfigError):
            MultiHeadSelfAttention(hidden_size=10, num_heads=3)


class TestForward:
    def test_output_shape(self, attention, rng):
        out = attention(Tensor(rng.normal(size=(2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_wrong_hidden_rejected(self, attention, rng):
        with pytest.raises(ShapeError):
            attention(Tensor(rng.normal(size=(2, 7, 8))))

    def test_wrong_rank_rejected(self, attention, rng):
        with pytest.raises(ShapeError):
            attention(Tensor(rng.normal(size=(7, 16))))

    def test_mask_shape_checked(self, attention, rng):
        hidden = Tensor(rng.normal(size=(2, 7, 16)))
        with pytest.raises(ShapeError):
            attention(hidden, attention_mask=np.ones((2, 5)))

    def test_masked_positions_do_not_influence_output(self, attention, rng):
        """Changing a padding token's content must not change unmasked outputs."""
        x = rng.normal(size=(1, 5, 16))
        mask = np.array([[1, 1, 1, 0, 0]])
        out_a = attention(Tensor(x), attention_mask=mask).data
        x_mod = x.copy()
        x_mod[0, 3:, :] = rng.normal(size=(2, 16))
        out_b = attention(Tensor(x_mod), attention_mask=mask).data
        np.testing.assert_allclose(out_a[0, :3], out_b[0, :3], atol=1e-10)

    def test_permutation_equivariance_without_positions(self, attention, rng):
        """Self-attention commutes with token permutation."""
        x = rng.normal(size=(1, 6, 16))
        perm = rng.permutation(6)
        out = attention(Tensor(x)).data
        out_perm = attention(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-10)

    def test_gradients_reach_all_projections(self, attention, rng):
        attention(Tensor(rng.normal(size=(1, 4, 16)))).sum().backward()
        for name, param in attention.named_parameters():
            assert param.grad is not None, name


class TestHeadPlumbing:
    def test_split_merge_round_trip(self, attention, rng):
        x = Tensor(rng.normal(size=(2, 5, 16)))
        round_tripped = attention._merge_heads(attention._split_heads(x))
        np.testing.assert_allclose(round_tripped.data, x.data)
