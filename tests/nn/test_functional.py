"""Tests for composite differentiable ops."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.conftest import assert_autograd_matches


class TestRelu:
    def test_values(self):
        out = F.relu(Tensor(np.array([-1.0, 0.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_gradient(self, rng):
        x = rng.normal(size=8) + 0.01  # avoid the kink
        assert_autograd_matches(lambda t: F.relu(t).sum(), x)


class TestGelu:
    def test_matches_reference_points(self):
        out = F.gelu(Tensor(np.array([0.0, 1.0, -1.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.8412, -0.1588], atol=1e-3)

    def test_gradient(self, rng):
        assert_autograd_matches(lambda t: F.gelu(t).sum(), rng.normal(size=8), atol=1e-5)

    def test_monotone_for_large_inputs(self):
        x = np.linspace(1, 5, 20)
        out = F.gelu(Tensor(x)).data
        assert np.all(np.diff(out) > 0)


class TestSigmoid:
    def test_values(self):
        np.testing.assert_allclose(F.sigmoid(Tensor(np.array([0.0]))).data, [0.5])

    def test_gradient(self, rng):
        assert_autograd_matches(lambda t: F.sigmoid(t).sum(), rng.normal(size=6))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b)

    def test_overflow_safe(self):
        out = F.softmax(Tensor(np.array([[1000.0, 0.0]])))
        assert np.isfinite(out.data).all()

    def test_gradient(self, rng):
        x = rng.normal(size=(2, 4))
        weights = Tensor(rng.normal(size=(2, 4)))
        assert_autograd_matches(lambda t: (F.softmax(t) * weights).sum(), x)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data)
        )

    def test_gradient(self, rng):
        x = rng.normal(size=(2, 4))
        weights = Tensor(rng.normal(size=(2, 4)))
        assert_autograd_matches(lambda t: (F.log_softmax(t) * weights).sum(), x)


class TestLayerNorm:
    def _params(self, dim, rng):
        return Tensor(rng.normal(1.0, 0.1, dim)), Tensor(rng.normal(0.0, 0.1, dim))

    def test_normalizes(self, rng):
        x = Tensor(rng.normal(3.0, 2.0, size=(4, 8)))
        weight = Tensor(np.ones(8))
        bias = Tensor(np.zeros(8))
        out = F.layer_norm(x, weight, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-4)

    def test_input_gradient(self, rng):
        x = rng.normal(size=(2, 6))
        weight, bias = self._params(6, rng)
        assert_autograd_matches(
            lambda t: (F.layer_norm(t, weight, bias) ** 2).sum(), x, atol=1e-5
        )

    def test_param_gradients(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        weight = Tensor(rng.normal(1.0, 0.1, 4), requires_grad=True)
        bias = Tensor(rng.normal(size=4), requires_grad=True)
        (F.layer_norm(x, weight, bias) ** 2).sum().backward()
        assert weight.grad is not None and bias.grad is not None

    def test_shape_mismatch_rejected(self, rng):
        x = Tensor(rng.normal(size=(2, 6)))
        with pytest.raises(ShapeError):
            F.layer_norm(x, Tensor(np.ones(5)), Tensor(np.zeros(6)))


class TestEmbeddingLookup:
    def test_gathers_rows(self, rng):
        table = Tensor(rng.normal(size=(10, 4)))
        ids = np.array([[1, 3], [0, 1]])
        out = F.embedding_lookup(table, ids)
        np.testing.assert_array_equal(out.data, table.data[ids])

    def test_gradient_accumulates_duplicates(self, rng):
        table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        F.embedding_lookup(table, np.array([2, 2, 4])).sum().backward()
        np.testing.assert_allclose(table.grad[2], np.full(3, 2.0))
        np.testing.assert_allclose(table.grad[4], np.ones(3))
        np.testing.assert_allclose(table.grad[0], np.zeros(3))

    def test_out_of_range_rejected(self, rng):
        table = Tensor(rng.normal(size=(5, 3)))
        with pytest.raises(IndexError):
            F.embedding_lookup(table, np.array([5]))

    def test_float_ids_rejected(self, rng):
        table = Tensor(rng.normal(size=(5, 3)))
        with pytest.raises(TypeError):
            F.embedding_lookup(table, np.array([1.0]))


class TestDropout:
    def test_identity_in_eval(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_identity_at_zero_rate(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_gradient_masked(self, rng):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        out.sum().backward()
        zeros = out.data == 0
        assert np.all(x.grad[zeros] == 0) and np.all(x.grad[~zeros] == 2.0)

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.0, rng, training=True)


class TestMaskedFill:
    def test_values(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]))
        out = F.masked_fill(x, np.array([True, False, True]), -9.0)
        np.testing.assert_array_equal(out.data, [-9.0, 2.0, -9.0])

    def test_gradient_blocked_at_mask(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        F.masked_fill(x, np.array([True, False]), 0.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0])
