"""Tests for the BERT encoder layer."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.nn.transformer import BertEncoderLayer


@pytest.fixture
def layer():
    return BertEncoderLayer(hidden_size=16, intermediate_size=32, num_heads=4, rng=0)


class TestStructure:
    def test_six_fc_weight_matrices(self, layer):
        # Table I: 6 FC layers per BERT layer.
        fc_weights = [
            name
            for name, param in layer.named_parameters()
            if name.endswith("weight") and param.ndim == 2
        ]
        assert len(fc_weights) == 6

    def test_fc_dimensions(self, layer):
        params = dict(layer.named_parameters())
        assert params["attention.query.weight"].shape == (16, 16)
        assert params["intermediate.weight"].shape == (32, 16)
        assert params["output.weight"].shape == (16, 32)


class TestForward:
    def test_shape_preserved(self, layer, rng):
        out = layer(Tensor(rng.normal(size=(2, 9, 16))))
        assert out.shape == (2, 9, 16)

    def test_output_layer_normalized(self, layer, rng):
        out = layer(Tensor(rng.normal(size=(2, 9, 16)))).data
        # Post-LN layout: means ~0 modulo the learned (initially 0) bias.
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros((2, 9)), atol=1e-9)

    def test_mask_accepted(self, layer, rng):
        mask = np.ones((2, 9))
        mask[:, 5:] = 0
        out = layer(Tensor(rng.normal(size=(2, 9, 16))), attention_mask=mask)
        assert np.isfinite(out.data).all()

    def test_gradients_reach_every_parameter(self, layer, rng):
        layer(Tensor(rng.normal(size=(1, 5, 16)))).sum().backward()
        for name, param in layer.named_parameters():
            assert param.grad is not None, name

    def test_deterministic_per_seed(self, rng):
        a = BertEncoderLayer(16, 32, 4, rng=7)
        b = BertEncoderLayer(16, 32, 4, rng=7)
        x = rng.normal(size=(1, 4, 16))
        np.testing.assert_array_equal(a(Tensor(x)).data, b(Tensor(x)).data)
