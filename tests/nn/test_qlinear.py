"""QuantizedLinear: Linear semantics on the compressed representation."""

import numpy as np
import pytest

from repro.core.quantizer import quantize_tensor
from repro.errors import ShapeError
from repro.nn import Linear, QuantizedLinear, Tensor
from repro.utils.rng import derive_rng


def make_pair(rng, in_features=24, out_features=16):
    """A Linear and the QuantizedLinear built from its quantized weight."""
    linear = Linear(in_features, out_features, rng=rng)
    linear.bias.data = rng.normal(size=out_features)
    tensor, _ = quantize_tensor(linear.weight.data, bits=3)
    return linear, QuantizedLinear.from_linear(linear, tensor), tensor


class TestForward:
    def test_matches_dequantized_linear(self):
        rng = derive_rng(20260807, "qlinear-fwd")
        linear, qlinear, tensor = make_pair(rng)
        # Load the *reconstructed* weights into the FP32 Linear so the two
        # paths compute the same function.
        linear.weight.data = tensor.dequantize(dtype=np.float64)
        x = Tensor(rng.normal(size=(5, 24)))
        np.testing.assert_allclose(
            qlinear(x).data, linear.eval()(x).data, rtol=1e-12, atol=1e-12
        )

    def test_accepts_plain_arrays(self):
        rng = derive_rng(20260807, "qlinear-array")
        _, qlinear, _ = make_pair(rng)
        out = qlinear(rng.normal(size=(3, 24)))
        assert isinstance(out, Tensor)
        assert out.shape == (3, 16)

    def test_3d_input(self):
        rng = derive_rng(20260807, "qlinear-3d")
        _, qlinear, _ = make_pair(rng)
        assert qlinear(Tensor(rng.normal(size=(2, 7, 24)))).shape == (2, 7, 16)

    def test_default_bias_is_zero(self):
        rng = derive_rng(20260807, "qlinear-nobias")
        tensor, _ = quantize_tensor(rng.normal(scale=0.05, size=(8, 12)), bits=3)
        qlinear = QuantizedLinear(tensor)
        np.testing.assert_array_equal(qlinear.bias.data, np.zeros(8))

    def test_no_dequantize_during_forward(self):
        """The defining property: forward never decodes the weight."""
        from repro import obs

        rng = derive_rng(20260807, "qlinear-obs")
        _, qlinear, _ = make_pair(rng)
        x = Tensor(rng.normal(size=(4, 24)))
        with obs.scope() as trace:
            qlinear(x)
        names = [event["name"] for event in trace.events]
        assert "quantizer.dequantize_calls" not in names
        assert "kernels.lookup_matmul_calls" in names


class TestContract:
    def test_training_mode_raises(self):
        rng = derive_rng(20260807, "qlinear-train")
        _, qlinear, _ = make_pair(rng)
        qlinear.train()
        with pytest.raises(RuntimeError, match="inference-only"):
            qlinear(Tensor(np.zeros((1, 24))))

    def test_starts_in_eval_mode(self):
        rng = derive_rng(20260807, "qlinear-eval")
        _, qlinear, _ = make_pair(rng)
        assert qlinear.training is False

    def test_non_2d_tensor_rejected(self):
        rng = derive_rng(20260807, "qlinear-1d")
        tensor, _ = quantize_tensor(rng.normal(scale=0.05, size=(6, 6)), bits=3)
        flat = type(tensor)(
            shape=(36,),
            bits=tensor.bits,
            centroids=tensor.centroids,
            packed_codes=tensor.packed_codes,
            outlier_positions=tensor.outlier_positions,
            outlier_values=tensor.outlier_values,
        )
        with pytest.raises(ShapeError, match="2-D"):
            QuantizedLinear(flat)

    def test_bias_shape_mismatch_rejected(self):
        rng = derive_rng(20260807, "qlinear-badbias")
        tensor, _ = quantize_tensor(rng.normal(scale=0.05, size=(6, 6)), bits=3)
        with pytest.raises(ShapeError, match="bias"):
            QuantizedLinear(tensor, bias=np.zeros(7))

    def test_from_linear_shape_mismatch_rejected(self):
        rng = derive_rng(20260807, "qlinear-mismatch")
        linear = Linear(10, 6, rng=rng)
        tensor, _ = quantize_tensor(rng.normal(scale=0.05, size=(6, 9)), bits=3)
        with pytest.raises(ShapeError, match="does not match"):
            QuantizedLinear.from_linear(linear, tensor)

    def test_from_linear_without_bias(self):
        """A bias-free Linear (bias=None) gets the constructor's zero bias
        instead of crashing with AttributeError."""
        rng = derive_rng(20260807, "qlinear-biasfree")
        linear = Linear(12, 8, rng=rng)
        object.__setattr__(linear, "bias", None)
        linear._parameters.pop("bias", None)
        tensor, _ = quantize_tensor(linear.weight.data, bits=3)
        qlinear = QuantizedLinear.from_linear(linear, tensor)
        np.testing.assert_array_equal(qlinear.bias.data, np.zeros(8))
        x = rng.normal(size=(3, 12))
        np.testing.assert_allclose(
            qlinear(Tensor(x)).data,
            x @ tensor.dequantize(dtype=np.float64).T,
            rtol=1e-12,
            atol=1e-12,
        )

    def test_only_bias_is_a_parameter(self):
        """The compressed weight must stay out of the trainable state."""
        rng = derive_rng(20260807, "qlinear-params")
        _, qlinear, _ = make_pair(rng)
        names = [name for name, _ in qlinear.named_parameters()]
        assert names == ["bias"]
