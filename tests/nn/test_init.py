"""Tests for the weight initializers."""

import numpy as np
import pytest

from repro.nn.init import normal, ones, truncated_normal, zeros


class TestNormal:
    def test_statistics(self):
        samples = normal((200, 200), std=0.05, rng=0)
        assert samples.std() == pytest.approx(0.05, rel=0.05)
        assert samples.mean() == pytest.approx(0.0, abs=0.002)

    def test_deterministic(self):
        np.testing.assert_array_equal(normal((4, 4), rng=7), normal((4, 4), rng=7))

    def test_has_tails(self):
        samples = normal((400, 400), std=1.0, rng=0)
        assert np.abs(samples).max() > 3.5  # a pure normal reaches its tails


class TestTruncatedNormal:
    def test_respects_truncation(self):
        samples = truncated_normal((300, 300), std=0.02, truncation=2.0, rng=0)
        assert np.abs(samples).max() <= 0.04 + 1e-12

    def test_mean_centered(self):
        samples = truncated_normal((200, 200), std=0.02, mean=0.5, rng=0)
        assert samples.mean() == pytest.approx(0.5, abs=0.001)


class TestConstants:
    def test_zeros(self):
        assert not zeros((3, 2)).any()

    def test_ones(self):
        assert (ones((4,)) == 1.0).all()
