"""Tests for Linear, Embedding, LayerNorm, Dropout layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.tensor import Tensor


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 3, rng=0)
        out = layer(Tensor(rng.normal(size=(4, 8))))
        assert out.shape == (4, 3)

    def test_batched_input(self, rng):
        layer = Linear(8, 3, rng=0)
        out = layer(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 3)

    def test_matches_manual_computation(self, rng):
        layer = Linear(4, 2, rng=0)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_weight_convention_out_by_in(self):
        assert Linear(5, 7, rng=0).weight.shape == (7, 5)

    def test_init_std_respected(self):
        layer = Linear(200, 200, rng=0, init_std=0.1)
        assert layer.weight.data.std() == pytest.approx(0.1, rel=0.05)

    def test_bias_initialized_zero(self):
        assert np.all(Linear(3, 3, rng=0).bias.data == 0)

    def test_wrong_input_dim_rejected(self, rng):
        with pytest.raises(ShapeError):
            Linear(4, 2, rng=0)(Tensor(rng.normal(size=(3, 5))))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ShapeError):
            Linear(0, 3)

    def test_gradients_flow(self, rng):
        layer = Linear(4, 2, rng=0)
        layer(Tensor(rng.normal(size=(3, 4)))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6, rng=0)
        assert emb(np.array([[1, 2, 3]])).shape == (1, 3, 6)

    def test_deterministic_per_seed(self):
        a, b = Embedding(10, 4, rng=3), Embedding(10, 4, rng=3)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ShapeError):
            Embedding(10, 0)


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        norm = LayerNorm(8)
        out = norm(Tensor(rng.normal(5.0, 3.0, size=(4, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-9)

    def test_affine_params_learnable(self):
        norm = LayerNorm(4)
        assert norm.weight.requires_grad and norm.bias.requires_grad


class TestDropout:
    def test_eval_mode_identity(self, rng):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(rng.normal(size=(3, 3)))
        assert drop(x) is x

    def test_train_mode_zeroes_entries(self):
        drop = Dropout(0.5, rng=0)
        out = drop(Tensor(np.ones((50, 50))))
        assert (out.data == 0).any()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
