"""Tests for Module/Parameter registration and state dicts."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module, ModuleList, Parameter


class Block(Module):
    def __init__(self):
        super().__init__()
        self.inner = Linear(4, 4, rng=0)
        self.scale = Parameter(np.ones(4))


class Net(Module):
    def __init__(self):
        super().__init__()
        self.block = Block()
        self.layers = ModuleList([Linear(4, 4, rng=i) for i in range(3)])


class TestRegistration:
    def test_named_parameters_dotted_paths(self):
        names = {name for name, _ in Net().named_parameters()}
        assert "block.inner.weight" in names
        assert "block.scale" in names
        assert "layers.2.bias" in names

    def test_num_parameters(self):
        net = Net()
        expected = sum(p.size for p in net.parameters())
        assert net.num_parameters() == expected

    def test_named_modules(self):
        names = {name for name, _ in Net().named_modules()}
        assert "" in names and "block" in names and "layers.1" in names

    def test_module_list_iteration(self):
        net = Net()
        assert len(net.layers) == 3
        assert [m for m in net.layers][0] is net.layers[0]


class TestStateDict:
    def test_round_trip(self):
        a, b = Net(), Net()
        b.load_state_dict(a.state_dict())
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        net = Net()
        state = net.state_dict()
        state["block.scale"][:] = 99.0
        assert not np.any(net.block.scale.data == 99.0)

    def test_load_is_a_copy(self):
        net = Net()
        state = net.state_dict()
        net.load_state_dict(state)
        state["block.scale"][:] = 99.0
        assert not np.any(net.block.scale.data == 99.0)

    def test_missing_key_rejected(self):
        net = Net()
        state = net.state_dict()
        del state["block.scale"]
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        net = Net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = Net()
        state = net.state_dict()
        state["block.scale"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)


class TestModes:
    def test_train_eval_propagate(self):
        net = Net()
        net.eval()
        assert not net.block.training and not net.layers[1].training
        net.train()
        assert net.block.training and net.layers[1].training

    def test_zero_grad_clears_all(self):
        net = Net()
        for p in net.parameters():
            p.grad = np.ones_like(p.data)
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
