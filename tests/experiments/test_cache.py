"""Tests for the checkpoint cache."""

import warnings

import numpy as np
import pytest

from repro.experiments import cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path


class TestCache:
    def test_round_trip(self, rng):
        state = {"a.weight": rng.normal(size=(3, 4)), "b": rng.normal(size=5)}
        cache.save_state("model-task", state, {"baseline": 0.9})
        loaded, scores = cache.load_state("model-task")
        assert set(loaded) == {"a.weight", "b"}
        np.testing.assert_array_equal(loaded["a.weight"], state["a.weight"])
        assert scores["baseline"] == 0.9

    def test_missing_returns_none(self):
        assert cache.load_state("never-saved") is None

    def test_key_sanitized(self, rng):
        cache.save_state("weird/key with spaces", {"x": rng.normal(size=2)})
        assert cache.load_state("weird/key with spaces") is not None

    def test_corrupt_file_returns_none(self, isolated_cache):
        path = cache.checkpoint_path("corrupt")
        path.write_bytes(b"not an npz")
        with pytest.warns(cache.CacheCorruptionWarning):
            assert cache.load_state("corrupt") is None

    def test_corrupt_file_deleted_so_next_run_retrains(self):
        path = cache.checkpoint_path("corrupt")
        path.write_bytes(b"not an npz")
        with pytest.warns(cache.CacheCorruptionWarning, match="corrupt"):
            cache.load_state("corrupt")
        assert not path.exists()
        # Second lookup is the silent missing case, not a second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load_state("corrupt") is None

    def test_truncated_checkpoint_detected(self, rng):
        cache.save_state("torn", {"x": rng.normal(size=64)})
        path = cache.checkpoint_path("torn")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.warns(cache.CacheCorruptionWarning):
            assert cache.load_state("torn") is None
        assert not path.exists()

    def test_parameterless_archive_treated_as_corrupt(self):
        np.savez(cache.checkpoint_path("hollow"), **{"score::only": np.float64(1.0)})
        with pytest.warns(cache.CacheCorruptionWarning, match="no parameters"):
            assert cache.load_state("hollow") is None

    def test_missing_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load_state("never-saved") is None

    def test_save_leaves_no_temporaries(self, isolated_cache, rng):
        cache.save_state("clean", {"x": rng.normal(size=8)})
        assert [p.name for p in isolated_cache.iterdir()] == ["clean.npz"]

    def test_clear_cache(self, rng):
        cache.save_state("a", {"x": rng.normal(size=2)})
        cache.save_state("b", {"x": rng.normal(size=2)})
        assert cache.clear_cache() == 2
        assert cache.load_state("a") is None

    def test_empty_key_rejected(self):
        with pytest.raises(Exception):
            cache.checkpoint_path("")


class TestCacheObservability:
    """The cache emits hit/miss/corrupt-evict counters and byte counts."""

    def test_miss_hit_and_bytes(self, rng):
        from repro import obs

        with obs.scope() as scoped:
            assert cache.load_state("fresh") is None
            cache.save_state("fresh", {"x": rng.normal(size=16)})
            assert cache.load_state("fresh") is not None
        snapshot = scoped.snapshot()
        assert snapshot.counter("cache.miss") == 1
        assert snapshot.counter("cache.hit") == 1
        assert snapshot.counter("cache.saved") == 1
        size = cache.checkpoint_path("fresh").stat().st_size
        assert snapshot.counter("cache.bytes_written") == size
        assert snapshot.counter("cache.bytes_read") == size

    def test_corrupt_evict_counted(self):
        from repro import obs

        cache.checkpoint_path("bad").write_bytes(b"not an npz")
        with obs.scope() as scoped:
            with pytest.warns(cache.CacheCorruptionWarning):
                assert cache.load_state("bad") is None
        assert scoped.snapshot().counter("cache.corrupt_evict") == 1
        assert scoped.snapshot().counter("cache.hit") == 0


class TestCacheMetricSkew:
    """cache.hit / cache.bytes_read must count successful loads only."""

    def test_corrupt_load_contributes_no_read_metrics(self):
        from repro import obs

        cache.checkpoint_path("skewed").write_bytes(b"\x00" * 512)
        with obs.scope() as scoped:
            with pytest.warns(cache.CacheCorruptionWarning):
                assert cache.load_state("skewed") is None
        snapshot = scoped.snapshot()
        assert snapshot.counter("cache.corrupt_evict") == 1
        assert snapshot.counter("cache.hit") == 0
        assert snapshot.counter("cache.bytes_read") == 0

    def test_empty_archive_counts_as_corrupt_not_hit(self, rng):
        from repro import obs

        # An archive with no param:: entries parses but is useless.
        cache.save_state("scores-only", {"x": rng.normal(size=4)})
        import numpy as np

        from repro.utils.atomic import atomic_savez

        atomic_savez(cache.checkpoint_path("scores-only"),
                     {"score::acc": np.float64(0.5)})
        with obs.scope() as scoped:
            with pytest.warns(cache.CacheCorruptionWarning):
                assert cache.load_state("scores-only") is None
        snapshot = scoped.snapshot()
        assert snapshot.counter("cache.hit") == 0
        assert snapshot.counter("cache.bytes_read") == 0
        assert snapshot.counter("cache.corrupt_evict") == 1

    def test_bytes_read_matches_file_size_on_hit(self, rng):
        from repro import obs

        cache.save_state("sized", {"w": rng.normal(size=(8, 8))})
        size = cache.checkpoint_path("sized").stat().st_size
        with obs.scope() as scoped:
            assert cache.load_state("sized") is not None
        assert scoped.snapshot().counter("cache.bytes_read") == size
