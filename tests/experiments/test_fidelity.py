"""Tests for the weight-space fidelity experiments.

These verify the paper's policy ordering where it is deterministic: on
Gaussian-distributed weights, GOBO's centroids reconstruct with lower L1
error than K-Means', and far lower than linear quantization's.
"""

import numpy as np
import pytest

from repro.experiments.fidelity import fidelity_sweep, policy_fidelity
from repro.models.zoo import SyntheticWeightSpec, synthetic_layer_weights


@pytest.fixture(scope="module")
def weights():
    return synthetic_layer_weights((150, 150), SyntheticWeightSpec(), rng=0)


class TestPolicyFidelity:
    def test_gobo_not_worse_than_kmeans_l1(self, weights):
        gobo = policy_fidelity(weights, 3, "gobo")
        kmeans = policy_fidelity(weights, 3, "kmeans")
        assert gobo.mean_abs_error <= kmeans.mean_abs_error * 1.001

    def test_linear_much_worse_on_gaussian(self, weights):
        """Table IV's shape: the linear policy is the clear loser."""
        gobo = policy_fidelity(weights, 3, "gobo")
        linear = policy_fidelity(weights, 3, "linear")
        assert linear.mean_abs_error > 1.5 * gobo.mean_abs_error

    def test_kmeans_wins_l2(self, weights):
        """K-Means optimizes L2; GOBO trades a little L2 for better L1."""
        gobo = policy_fidelity(weights, 3, "gobo")
        kmeans = policy_fidelity(weights, 3, "kmeans")
        assert kmeans.rmse <= gobo.rmse * 1.05

    def test_gobo_converges_faster(self, weights):
        gobo = policy_fidelity(weights, 3, "gobo")
        kmeans = policy_fidelity(weights, 3, "kmeans")
        assert gobo.iterations < kmeans.iterations

    def test_more_bits_less_error(self, weights):
        errors = [policy_fidelity(weights, bits, "gobo").mean_abs_error for bits in (2, 3, 4)]
        assert errors[0] > errors[1] > errors[2]

    def test_normalized_to(self, weights):
        gobo = policy_fidelity(weights, 3, "gobo")
        linear = policy_fidelity(weights, 3, "linear")
        assert linear.normalized_to(gobo) == pytest.approx(
            linear.mean_abs_error / gobo.mean_abs_error
        )

    def test_unknown_policy_rejected(self, weights):
        with pytest.raises(ValueError):
            policy_fidelity(weights, 3, "magic")


class TestFidelitySweep:
    def test_full_grid(self):
        results = fidelity_sweep(bits_list=(2, 3), layer_shape=(80, 80))
        assert len(results) == 6
        assert {r.policy for r in results} == {"linear", "kmeans", "gobo"}
        assert {r.bits for r in results} == {2, 3}

    def test_ordering_holds_across_bits(self):
        results = fidelity_sweep(bits_list=(3, 4), layer_shape=(120, 120))
        by_key = {(r.policy, r.bits): r for r in results}
        for bits in (3, 4):
            assert (
                by_key[("gobo", bits)].mean_abs_error
                <= by_key[("kmeans", bits)].mean_abs_error * 1.001
                < by_key[("linear", bits)].mean_abs_error
            )
