"""Tests for the per-layer sensitivity scan."""

import pytest

from repro.data import generate_mnli
from repro.experiments.sensitivity import (
    LayerSensitivity,
    layer_sensitivity_scan,
    sensitive_components,
)
from repro.models import build_model
from repro.training import Trainer
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def trained():
    splits = generate_mnli(num_train=128, num_eval=64, rng=0)
    model = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=1)
    Trainer(model, lr=2e-3, batch_size=16, rng=2).fit(splits.train, epochs=3)
    probe = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=9)
    return model, probe, splits.eval


class TestLayerSensitivityScan:
    def test_scans_selected_layers(self, trained):
        model, probe, eval_data = trained
        layers = (
            "bert.encoder.0.attention.value.weight",
            "bert.encoder.0.intermediate.weight",
            "bert.pooler.weight",
        )
        results = layer_sensitivity_scan(model, probe, eval_data, bits=2, layers=layers)
        assert {r.layer for r in results} == set(layers)

    def test_sorted_most_sensitive_first(self, trained):
        model, probe, eval_data = trained
        layers = tuple(
            f"bert.encoder.{i}.attention.{c}.weight"
            for i in range(2)
            for c in ("query", "value")
        )
        results = layer_sensitivity_scan(model, probe, eval_data, bits=2, layers=layers)
        drops = [r.drop for r in results]
        assert drops == sorted(drops, reverse=True)

    def test_unknown_layer_rejected(self, trained):
        model, probe, eval_data = trained
        with pytest.raises(ValueError):
            layer_sensitivity_scan(model, probe, eval_data, layers=("nope.weight",))

    def test_scores_within_metric_range(self, trained):
        model, probe, eval_data = trained
        results = layer_sensitivity_scan(
            model, probe, eval_data, bits=2,
            layers=("bert.encoder.0.output.weight",),
        )
        assert 0.0 <= results[0].score <= 1.0


class TestSensitiveComponents:
    def _results(self, drops):
        return [
            LayerSensitivity(layer=name, score=1.0 - drop, drop=drop)
            for name, drop in drops
        ]

    def test_counts_components_of_top_fraction(self):
        results = self._results(
            [
                ("bert.encoder.0.attention.value.weight", 0.3),
                ("bert.encoder.3.attention.value.weight", 0.2),
                ("bert.encoder.1.intermediate.weight", 0.1),
                ("bert.encoder.2.output.weight", 0.0),
            ]
        )
        counts = sensitive_components(results, top_fraction=0.5)
        assert counts == {"attention.value": 2}

    def test_pooler_component_name(self):
        results = self._results([("bert.pooler.weight", 0.5)])
        assert sensitive_components(results, 1.0) == {"pooler": 1}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            sensitive_components([], top_fraction=0.0)
