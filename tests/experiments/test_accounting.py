"""Tests for full-scale storage-accounting helpers in the tables module."""

import pytest

from repro.experiments.tables import (
    _average_outlier_fraction,
    fp32_model_bytes,
    gobo_model_bytes,
    measured_outlier_fractions,
    q8bert_model_bytes,
    qbert_model_bytes,
)
from repro.models import fc_weight_count, get_config


class TestMeasuredOutlierFractions:
    def test_covers_every_fc_layer(self):
        config = get_config("tiny-bert-base")
        fractions = measured_outlier_fractions("tiny-bert-base")
        assert len(fractions) == config.num_fc_layers

    def test_fractions_small(self):
        fractions = measured_outlier_fractions("tiny-bert-base")
        assert all(0.0 <= f < 0.02 for f in fractions.values())

    def test_average_is_weighted(self):
        average = _average_outlier_fraction("tiny-bert-base")
        fractions = measured_outlier_fractions("tiny-bert-base")
        assert min(fractions.values()) <= average <= max(fractions.values())

    def test_cached(self):
        a = measured_outlier_fractions("tiny-bert-base")
        b = measured_outlier_fractions("tiny-bert-base")
        assert a is b


class TestModelBytes:
    def test_fp32_composition(self):
        config = get_config("tiny-bert-base")
        weights_only = fp32_model_bytes(config, include_embeddings=False)
        assert weights_only == fc_weight_count(config) * 4
        assert fp32_model_bytes(config) > weights_only

    def test_gobo_bytes_monotone_in_bits(self):
        config = get_config("bert-base")
        assert gobo_model_bytes(config, 3, 4) < gobo_model_bytes(config, 4, 4)

    def test_gobo_embeddings_optional(self):
        config = get_config("bert-base")
        with_emb = gobo_model_bytes(config, 3, 4)
        without = gobo_model_bytes(config, 3, None)
        assert with_emb > without

    def test_outlier_fraction_raises_cost(self):
        config = get_config("bert-base")
        clean = gobo_model_bytes(config, 3, 4, outlier_fraction=0.0)
        dirty = gobo_model_bytes(config, 3, 4, outlier_fraction=0.01)
        assert dirty > clean

    def test_q8bert_is_exactly_one_byte_per_value(self):
        config = get_config("bert-base")
        assert q8bert_model_bytes(config) * 4 == fp32_model_bytes(config)

    def test_qbert_includes_dictionaries(self):
        config = get_config("bert-base")
        bare_codes = fc_weight_count(config) * 3 // 8
        assert qbert_model_bytes(config, 3) > bare_codes
