"""Tests for the accuracy experiment engine (micro-scale, no disk cache)."""

import numpy as np
import pytest

import repro.experiments.accuracy as accuracy_mod
from repro.experiments.accuracy import (
    TrainRecipe,
    error_vs_baseline,
    get_finetuned,
    quantized_score,
    resolve_model_name,
)
from tests.conftest import MICRO_CONFIG


@pytest.fixture(autouse=True)
def micro_recipes(monkeypatch, tmp_path):
    """Shrink the training recipes and isolate the disk cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setattr(
        accuracy_mod,
        "RECIPES",
        {
            "mnli": TrainRecipe("mnli", "classification", 3, 64, 32, 1, 2e-3, 16),
            "stsb": TrainRecipe("stsb", "regression", 0, 64, 32, 1, 2e-3, 16),
        },
    )
    monkeypatch.setattr(accuracy_mod, "TINY_COUNTERPART", {"bert-base": "micro"})
    monkeypatch.setattr(
        accuracy_mod, "get_config", lambda name: MICRO_CONFIG
    )
    accuracy_mod.task_splits.cache_clear()
    yield
    accuracy_mod.task_splits.cache_clear()


class TestResolveModelName:
    def test_full_scale_mapped(self):
        assert resolve_model_name("bert-base") == "micro"

    def test_unknown_passthrough(self):
        assert resolve_model_name("micro") == "micro"


class TestGetFinetuned:
    def test_trains_and_reports_baseline(self):
        finetuned = get_finetuned("bert-base", "mnli", use_cache=False)
        assert 0.0 <= finetuned.baseline_score <= 1.0
        assert finetuned.task == "mnli"

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            get_finetuned("bert-base", "qa", use_cache=False)

    def test_cache_round_trip(self):
        first = get_finetuned("bert-base", "mnli", use_cache=True)
        second = get_finetuned("bert-base", "mnli", use_cache=True)
        assert second.baseline_score == first.baseline_score
        np.testing.assert_array_equal(
            first.model.state_dict()["classifier.weight"],
            second.model.state_dict()["classifier.weight"],
        )


class TestQuantizedScore:
    @pytest.fixture(scope="class")
    def finetuned(self):
        # Class-scoped: train once for all scoring tests (fixtures above are
        # function-scoped, so rebuild the environment manually here).
        pass

    def test_scores_in_range(self):
        finetuned = get_finetuned("bert-base", "mnli", use_cache=False)
        for bits in (2, 4):
            score = quantized_score(finetuned, bits, None, method="gobo")
            assert 0.0 <= score <= 1.0

    def test_high_bits_track_baseline(self):
        finetuned = get_finetuned("bert-base", "mnli", use_cache=False)
        score = quantized_score(finetuned, 8, 8, method="gobo")
        assert abs(score - finetuned.baseline_score) < 0.15

    def test_embedding_only_scenario(self):
        finetuned = get_finetuned("bert-base", "mnli", use_cache=False)
        score = quantized_score(finetuned, None, 4, method="gobo")
        assert 0.0 <= score <= 1.0

    def test_source_model_not_mutated(self):
        finetuned = get_finetuned("bert-base", "mnli", use_cache=False)
        before = {k: v.copy() for k, v in finetuned.model.state_dict().items()}
        quantized_score(finetuned, 2, 2, method="linear")
        after = finetuned.model.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])


class TestErrorVsBaseline:
    def test_positive_when_worse(self):
        assert error_vs_baseline(0.9, 0.85) == pytest.approx(0.05)

    def test_negative_when_better(self):
        assert error_vs_baseline(0.9, 0.95) == pytest.approx(-0.05)
