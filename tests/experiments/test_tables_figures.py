"""Tests for the table/figure runners that need no training."""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig1b_distributions,
    fig1c_weight_scatter,
    fig2_convergence,
    fig3_compression_curve,
    fig3_outlier_census,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.tables import (
    TableResult,
    fp32_model_bytes,
    gobo_model_bytes,
    q8bert_model_bytes,
    qbert_model_bytes,
    table1_architecture,
    table2_footprint,
    table7_embeddings,
)
from repro.models import get_config


class TestStaticTables:
    def test_table1_renders(self):
        result = table1_architecture()
        text = result.render()
        assert "768 x 768" in text and "1024 x 4096" in text

    def test_table2_matches_paper_numbers(self):
        text = table2_footprint().render()
        assert "89.42 MB" in text
        assert "326.25 MB" in text
        assert "119.2" in text

    def test_table7_compression_ratios(self):
        result = table7_embeddings()
        text = result.render()
        # Paper: ~10.4x at 3 bits, ~7.9x at 4 bits.
        assert "10.4" in text and "7.8" in text

    def test_table_result_render_is_aligned(self):
        result = TableResult("T", ["a", "b"], [["1", "2"]])
        lines = result.render().splitlines()
        assert lines[0] == "T"


class TestFullScaleAccounting:
    def test_gobo_model_ratio_matches_paper(self):
        """Table III: GOBO 3-bit weights + 4-bit embeddings ~ 9.8x."""
        config = get_config("bert-base")
        ratio = fp32_model_bytes(config) / gobo_model_bytes(config, 3, 4, 0.001)
        assert ratio == pytest.approx(9.8, abs=0.3)

    def test_gobo_4bit_ratio(self):
        config = get_config("bert-base")
        ratio = fp32_model_bytes(config) / gobo_model_bytes(config, 4, 4, 0.001)
        assert ratio == pytest.approx(7.9, abs=0.3)

    def test_qbert_ratios_match_paper(self):
        config = get_config("bert-base")
        fp32 = fp32_model_bytes(config)
        assert fp32 / qbert_model_bytes(config, 3) == pytest.approx(7.8, abs=0.3)
        assert fp32 / qbert_model_bytes(config, 4) == pytest.approx(6.5, abs=0.3)

    def test_q8bert_ratio_is_4x(self):
        config = get_config("bert-base")
        assert fp32_model_bytes(config) / q8bert_model_bytes(config) == pytest.approx(4.0)


class TestFigures:
    def test_fig1b_layers_are_gaussian(self):
        distributions = fig1b_distributions("tiny-bert-base", layer_indices=(0, 3))
        assert len(distributions) == 2
        for dist in distributions:
            assert dist.gaussian_overlap > 0.85
            assert dist.counts.sum() > 0

    def test_fig1b_bad_index_rejected(self):
        with pytest.raises(IndexError):
            fig1b_distributions("tiny-bert-base", layer_indices=(999,))

    def test_fig1c_scatter_flags_fringe(self):
        scatter = fig1c_weight_scatter("tiny-bert-base", layer_index=2, sample=2000)
        assert scatter.is_outlier.any()
        assert scatter.outlier_fraction < 0.05
        outlier_values = np.abs(scatter.values[scatter.is_outlier])
        inlier_values = np.abs(scatter.values[~scatter.is_outlier])
        assert outlier_values.min() > inlier_values.max() * 0.9

    def test_fig2_convergence_claims(self):
        comparison = fig2_convergence(layer_shape=(128, 128), bits=3)
        assert comparison.speedup > 3.0
        assert comparison.gobo_final_l1 <= comparison.kmeans_final_l1 * 1.01
        assert comparison.gobo_trace.iterations < comparison.kmeans_trace.iterations

    def test_fig3_census_shape(self):
        census = fig3_outlier_census("tiny-bert-base")
        config = get_config("tiny-bert-base")
        assert len(census) == config.num_fc_layers
        fractions = [fraction for _, fraction in census]
        assert all(0.0 <= f < 0.02 for f in fractions)

    def test_fig3_compression_curve_monotone(self):
        curves = fig3_compression_curve(bits_list=(3,), weight_counts=(16, 1024, 1 << 20))
        ratios = [r for _, r in curves[3]]
        assert ratios == sorted(ratios)
        assert ratios[-1] == pytest.approx(32 / 3, rel=0.01)


class TestRegistry:
    def test_all_paper_targets_present(self):
        for identifier in ("table1", "table2", "table3", "table4", "table5",
                           "table6", "table7", "fig1b", "fig1c", "fig2", "fig3", "fig4"):
            assert identifier in EXPERIMENTS

    def test_get_experiment(self):
        assert get_experiment("table1").runner is table1_architecture

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_list_sorted(self):
        listed = list_experiments()
        assert listed == sorted(listed)
