"""Tests for the uniform experiment-payload renderer."""

import numpy as np

from repro.core.clustering import ConvergenceTrace
from repro.experiments.figures import (
    ConvergenceComparison,
    EmbeddingAccuracyPoint,
    LayerDistribution,
    WeightScatter,
)
from repro.experiments.report import render_payload
from repro.experiments.tables import TableResult


def _trace(values):
    trace = ConvergenceTrace()
    trace.l1_norms.extend(values)
    trace.l2_norms.extend(v * v for v in values)
    return trace


class TestRenderPayload:
    def test_table_result(self):
        payload = TableResult("T", ["a"], [["x"]])
        assert render_payload(payload).startswith("T")

    def test_list_of_tables(self):
        payload = [TableResult("A", ["h"], []), TableResult("B", ["h"], [])]
        text = render_payload(payload)
        assert "A" in text and "B" in text

    def test_distributions(self):
        payload = [
            LayerDistribution(
                layer="encoder.0",
                centers=np.zeros(3),
                counts=np.ones(3, dtype=int),
                mean=0.0,
                std=0.04,
                gaussian_overlap=0.97,
            )
        ]
        text = render_payload(payload)
        assert "encoder.0" in text and "0.970" in text

    def test_census(self):
        text = render_payload([("encoder.0.x", 0.001), ("pooler", 0.006)])
        assert "0.100%" in text and "0.600%" in text

    def test_convergence(self):
        payload = ConvergenceComparison(
            gobo_trace=_trace([10.0, 5.0]),
            kmeans_trace=_trace([10.0, 5.0, 4.0, 4.0]),
            gobo_iterations=2,
            kmeans_iterations=4,
            gobo_final_l1=5.0,
            kmeans_final_l1=4.0,
            gobo_inference_error=0.0069,
            kmeans_inference_error=0.0136,
        )
        text = render_payload(payload)
        assert "2.0x" in text and "+0.69%" in text

    def test_scatter(self):
        payload = WeightScatter(
            layer="encoder.1",
            positions=np.arange(4),
            values=np.array([0.1, -0.2, 0.3, 0.5]),
            is_outlier=np.array([False, False, False, True]),
            magnitude_cutoff=0.4,
            outlier_fraction=0.001,
        )
        text = render_payload(payload)
        assert "encoder.1" in text and "0.100%" in text

    def test_embedding_points(self):
        payload = [
            EmbeddingAccuracyPoint(
                model="bert-base", scenario="s", score=0.84, normalized=0.99
            )
        ]
        text = render_payload(payload)
        assert "bert-base" in text and "84.00%" in text

    def test_curves_dict(self):
        text = render_payload({3: [(16, 1.68), (1024, 9.85)]})
        assert "3-bit" in text and "9.85x" in text

    def test_empty_list(self):
        assert render_payload([]) == "(empty)"

    def test_unknown_payload_reprs(self):
        assert render_payload(42) == "42"
