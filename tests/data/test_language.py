"""Tests for the synthetic language."""

import pytest

from repro.data.synthetic_language import SyntheticLanguage, default_language


@pytest.fixture
def language():
    return default_language()


class TestTokens:
    def test_all_families_present(self, language):
        tokens = language.tokens()
        assert "one0" in tokens and "two0" in tokens
        assert "ent0" in tokens and "word0" in tokens
        assert "ans" in tokens and "mark0" in tokens

    def test_no_duplicates(self, language):
        tokens = language.tokens()
        assert len(tokens) == len(set(tokens))

    def test_vocabulary_size_counts_specials(self, language):
        assert language.vocabulary_size() == len(language.tokens()) + 5

    def test_fits_tiny_model_vocab(self, language):
        assert language.vocabulary_size() <= 160

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticLanguage(num_entities=1)
        with pytest.raises(ValueError):
            SyntheticLanguage(num_fillers=0)
        with pytest.raises(ValueError):
            SyntheticLanguage(num_light_forms=0)


class TestWordWeight:
    def test_light_is_one(self, language):
        assert language.word_weight("one2") == 1

    def test_heavy_is_two(self, language):
        assert language.word_weight("two0") == 2

    def test_others_are_zero(self, language):
        assert language.word_weight("word5") == 0
        assert language.word_weight("ans") == 0


class TestValueSentence:
    @pytest.mark.parametrize("score", [0, 1, 2, 7, 15])
    def test_score_round_trip(self, language, score, rng):
        sentence = language.value_sentence(score, rng)
        assert language.sentence_score(sentence) == score

    def test_contains_fillers(self, language, rng):
        sentence = language.value_sentence(0, rng, min_fillers=3, max_fillers=3)
        assert len(sentence.split()) == 3

    def test_negative_score_rejected(self, language, rng):
        with pytest.raises(ValueError):
            language.value_sentence(-1, rng)

    def test_deterministic_under_seed(self, language):
        assert language.value_sentence(5, 42) == language.value_sentence(5, 42)

    def test_surface_variety(self, language):
        # Over many samples both light and heavy forms should appear.
        words = " ".join(language.value_sentence(6, seed) for seed in range(20)).split()
        assert any(w.startswith("one") for w in words)
        assert any(w.startswith("two") for w in words)
