"""Tests for minibatching and TaskData containers."""

import numpy as np
import pytest

from repro.data.batching import iterate_batches
from repro.data.mnli import generate_mnli
from repro.data.task import TaskData
from repro.errors import ShapeError
from repro.tokenization.tokenizer import Encoding


@pytest.fixture(scope="module")
def data():
    return generate_mnli(num_train=25, num_eval=5, rng=0).train


class TestIterateBatches:
    def test_covers_all_examples(self, data):
        total = sum(len(batch) for batch in iterate_batches(data, 8))
        assert total == 25

    def test_last_batch_short(self, data):
        sizes = [len(b) for b in iterate_batches(data, 8)]
        assert sizes == [8, 8, 8, 1]

    def test_drop_last(self, data):
        sizes = [len(b) for b in iterate_batches(data, 8, drop_last=True)]
        assert sizes == [8, 8, 8]

    def test_shuffle_changes_order(self, data):
        plain = next(iter(iterate_batches(data, 8)))
        shuffled = next(iter(iterate_batches(data, 8, shuffle=True, rng=0)))
        assert not np.array_equal(plain.encodings.input_ids, shuffled.encodings.input_ids)

    def test_shuffle_deterministic(self, data):
        a = next(iter(iterate_batches(data, 8, shuffle=True, rng=3)))
        b = next(iter(iterate_batches(data, 8, shuffle=True, rng=3)))
        np.testing.assert_array_equal(a.encodings.input_ids, b.encodings.input_ids)

    def test_labels_stay_aligned(self, data):
        for batch in iterate_batches(data, 8, shuffle=True, rng=1):
            assert batch.labels.shape[0] == batch.encodings.input_ids.shape[0]

    def test_invalid_batch_size(self, data):
        with pytest.raises(ValueError):
            list(iterate_batches(data, 0))


class TestTaskData:
    def test_label_count_checked(self):
        enc = Encoding(
            input_ids=np.zeros((3, 4), dtype=np.int64),
            attention_mask=np.ones((3, 4), dtype=np.int64),
            token_type_ids=np.zeros((3, 4), dtype=np.int64),
        )
        with pytest.raises(ShapeError):
            TaskData("x", "classification", enc, labels=np.zeros(2, dtype=np.int64))

    def test_span_label_shape_checked(self):
        enc = Encoding(
            input_ids=np.zeros((3, 4), dtype=np.int64),
            attention_mask=np.ones((3, 4), dtype=np.int64),
            token_type_ids=np.zeros((3, 4), dtype=np.int64),
        )
        with pytest.raises(ShapeError):
            TaskData("x", "span", enc, labels=np.zeros(3, dtype=np.int64))

    def test_unknown_task_type(self):
        enc = Encoding(
            input_ids=np.zeros((1, 4), dtype=np.int64),
            attention_mask=np.ones((1, 4), dtype=np.int64),
            token_type_ids=np.zeros((1, 4), dtype=np.int64),
        )
        with pytest.raises(ValueError):
            TaskData("x", "magic", enc, labels=np.zeros(1))

    def test_subset(self, data):
        subset = data.subset(np.array([0, 2, 4]))
        assert len(subset) == 3
        np.testing.assert_array_equal(
            subset.encodings.input_ids[1], data.encodings.input_ids[2]
        )
        assert subset.labels[2] == data.labels[4]

    def test_max_length(self, data):
        assert data.max_length == data.encodings.input_ids.shape[1]
