"""Tests for the three task generators."""

import numpy as np
import pytest

from repro.data.mnli import generate_mnli
from repro.data.squad import generate_squad
from repro.data.stsb import generate_stsb
from repro.data.synthetic_language import default_language


class TestMnli:
    @pytest.fixture(scope="class")
    def splits(self):
        return generate_mnli(num_train=60, num_eval=30, rng=0)

    def test_split_sizes(self, splits):
        assert len(splits.train) == 60 and len(splits.eval) == 30

    def test_three_classes_present(self, splits):
        assert set(np.unique(splits.train.labels)) == {0, 1, 2}

    def test_labels_match_sentence_scores(self, splits):
        """Decode each pair and verify the label from the value sums."""
        language = default_language()
        vocab = splits.tokenizer.vocab
        data = splits.eval
        for i in range(len(data)):
            ids = data.encodings.input_ids[i]
            segments = data.encodings.token_type_ids[i]
            mask = data.encodings.attention_mask[i]
            words = [vocab.token_of(int(t)) for t in ids[mask == 1]]
            seg = segments[mask == 1]
            score_a = sum(language.word_weight(w) for w, s in zip(words, seg) if s == 0)
            score_b = sum(language.word_weight(w) for w, s in zip(words, seg) if s == 1)
            expected = 0 if score_a > score_b else (1 if score_a == score_b else 2)
            assert expected == data.labels[i]

    def test_deterministic(self):
        a = generate_mnli(num_train=10, num_eval=5, rng=7)
        b = generate_mnli(num_train=10, num_eval=5, rng=7)
        np.testing.assert_array_equal(
            a.train.encodings.input_ids, b.train.encodings.input_ids
        )
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_train_eval_disjoint_streams(self, splits):
        assert not np.array_equal(
            splits.train.encodings.input_ids[: len(splits.eval)],
            splits.eval.encodings.input_ids,
        )


class TestStsb:
    @pytest.fixture(scope="class")
    def splits(self):
        return generate_stsb(num_train=60, num_eval=30, rng=0)

    def test_task_type(self, splits):
        assert splits.train.task_type == "regression"

    def test_scores_in_range(self, splits):
        assert splits.train.labels.min() >= 0.0
        assert splits.train.labels.max() <= 5.0

    def test_scores_are_graded(self, splits):
        assert len(np.unique(splits.train.labels)) > 3

    def test_labels_match_sum_difference(self, splits):
        language = default_language()
        vocab = splits.tokenizer.vocab
        data = splits.eval
        for i in range(len(data)):
            ids = data.encodings.input_ids[i]
            seg = data.encodings.token_type_ids[i]
            mask = data.encodings.attention_mask[i]
            words = [vocab.token_of(int(t)) for t in ids[mask == 1]]
            segs = seg[mask == 1]
            sum_a = sum(language.word_weight(w) for w, s in zip(words, segs) if s == 0)
            sum_b = sum(language.word_weight(w) for w, s in zip(words, segs) if s == 1)
            expected = 5.0 * (1.0 - abs(sum_a - sum_b) / 8.0)
            assert data.labels[i] == pytest.approx(expected)


class TestSquad:
    @pytest.fixture(scope="class")
    def splits(self):
        return generate_squad(num_train=60, num_eval=30, rng=0)

    def test_task_type_and_label_shape(self, splits):
        assert splits.train.task_type == "span"
        assert splits.train.labels.shape == (60, 2)

    def test_spans_are_ordered(self, splits):
        assert np.all(splits.train.labels[:, 1] >= splits.train.labels[:, 0])

    def test_spans_point_at_entities_after_ans(self, splits):
        vocab = splits.tokenizer.vocab
        data = splits.eval
        for i in range(len(data)):
            ids = data.encodings.input_ids[i]
            start, end = data.labels[i]
            # The token before the span start is the answer marker.
            assert vocab.token_of(int(ids[start - 1])) == "ans"
            for position in range(start, end + 1):
                assert vocab.token_of(int(ids[position])).startswith("ent")

    def test_answer_span_lengths_vary(self, splits):
        lengths = splits.train.labels[:, 1] - splits.train.labels[:, 0] + 1
        assert set(np.unique(lengths)) == {1, 2, 3}

    def test_spans_inside_max_length(self, splits):
        assert splits.train.labels.max() < splits.train.max_length
