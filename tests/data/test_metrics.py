"""Tests for the task metrics."""

import numpy as np
import pytest

from repro.data.metrics import accuracy, metric_for_task, span_f1, spearman
from repro.errors import ShapeError


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2, 0]), np.array([1, 2, 0])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([1, 2, 0, 1]), np.array([1, 2, 2, 2])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(x * 10 + 5, x) == pytest.approx(1.0)

    def test_reversed(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(-x, x) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_perfect(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(np.exp(x), x) == pytest.approx(1.0)

    def test_constant_predictions_score_zero(self):
        assert spearman(np.ones(5), np.arange(5.0)) == 0.0

    def test_too_few_samples(self):
        with pytest.raises(ShapeError):
            spearman(np.array([1.0]), np.array([1.0]))


class TestSpanF1:
    def test_exact_match(self):
        spans = np.array([[2, 4], [0, 0]])
        assert span_f1(spans, spans) == 1.0

    def test_no_overlap(self):
        assert span_f1(np.array([[0, 1]]), np.array([[5, 6]])) == 0.0

    def test_partial_overlap(self):
        # predicted {2,3}, gold {3,4}: precision 0.5, recall 0.5, F1 0.5.
        assert span_f1(np.array([[2, 3]]), np.array([[3, 4]])) == pytest.approx(0.5)

    def test_prediction_superset(self):
        # predicted {1..4}, gold {2,3}: precision 0.5, recall 1 -> F1 2/3.
        assert span_f1(np.array([[1, 4]]), np.array([[2, 3]])) == pytest.approx(2 / 3)

    def test_averages_over_examples(self):
        predicted = np.array([[0, 0], [9, 9]])
        gold = np.array([[0, 0], [0, 0]])
        assert span_f1(predicted, gold) == pytest.approx(0.5)

    def test_shape_checked(self):
        with pytest.raises(ShapeError):
            span_f1(np.array([1, 2]), np.array([1, 2]))


class TestMetricForTask:
    def test_mapping(self):
        assert metric_for_task("classification") is accuracy
        assert metric_for_task("regression") is spearman
        assert metric_for_task("span") is span_f1

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            metric_for_task("generation")
