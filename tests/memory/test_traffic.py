"""Tests for the traffic model."""

import pytest

from repro.memory.traffic import compressed_traffic, fp32_traffic
from repro.models.config import BERT_BASE
from tests.conftest import MICRO_CONFIG


class TestFp32Traffic:
    def test_weights_dominate(self):
        """The paper's premise: BERT inference is weight-bound."""
        traffic = fp32_traffic(BERT_BASE, sequence_length=128)
        assert traffic.weight_bytes > 10 * traffic.activation_bytes
        assert traffic.weight_bytes > 10 * traffic.embedding_bytes

    def test_embedding_traffic_scales_with_sequence(self):
        short = fp32_traffic(MICRO_CONFIG, sequence_length=16)
        long = fp32_traffic(MICRO_CONFIG, sequence_length=32)
        assert long.embedding_bytes == 2 * short.embedding_bytes
        assert long.weight_bytes == short.weight_bytes

    def test_totals_compose(self):
        traffic = fp32_traffic(MICRO_CONFIG)
        assert traffic.total_bytes == traffic.offchip_bytes + traffic.activation_bytes


class TestCompressedTraffic:
    def test_weight_reduction_matches_bits(self):
        base = fp32_traffic(BERT_BASE)
        compressed = compressed_traffic(BERT_BASE, weight_bits=3.1, embedding_bits=4.0)
        assert compressed.weight_bytes == pytest.approx(
            base.weight_bytes * 3.1 / 32, rel=0.01
        )

    def test_activations_unchanged(self):
        base = fp32_traffic(BERT_BASE)
        compressed = compressed_traffic(BERT_BASE, weight_bits=3, embedding_bits=4)
        assert compressed.activation_bytes == base.activation_bytes

    def test_tenfold_traffic_cut(self):
        """GOBO's headline: ~10x less off-chip traffic at 3 bits."""
        base = fp32_traffic(BERT_BASE)
        compressed = compressed_traffic(BERT_BASE, weight_bits=3.07, embedding_bits=3.07)
        assert base.offchip_bytes / compressed.offchip_bytes == pytest.approx(10.4, abs=0.3)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            compressed_traffic(BERT_BASE, weight_bits=0, embedding_bits=4)
