"""Tests for the energy model."""

import pytest

from repro.memory.energy import EnergyModel, compression_energy_report


class TestEnergyModel:
    def test_default_ratio_two_orders_of_magnitude(self):
        # The paper's Section I claim.
        model = EnergyModel()
        assert 50 < model.offchip_ratio < 250

    def test_access_energy_additive(self):
        model = EnergyModel(dram_pj_per_byte=100.0, sram_pj_per_byte=1.0)
        assert model.access_energy_pj(10, 20) == pytest.approx(1020.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().access_energy_pj(-1)

    def test_invalid_energies_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_pj_per_byte=0.0)


class TestCompressionEnergyReport:
    def test_saving_tracks_compression(self):
        report = compression_energy_report(fp32_bytes=1000, compressed_bytes=100)
        assert report.saving_ratio == pytest.approx(10.0)

    def test_activations_dilute_saving(self):
        pure = compression_energy_report(1000, 100)
        diluted = compression_energy_report(1000, 100, activation_bytes=100000)
        assert diluted.saving_ratio < pure.saving_ratio

    def test_zero_compressed(self):
        report = compression_energy_report(1000, 0)
        assert report.saving_ratio == float("inf")
