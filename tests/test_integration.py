"""End-to-end integration tests: the paper's full workflow at micro scale.

fine-tune -> freeze -> quantize -> decode -> re-evaluate, across tasks and
quantization methods, all through the public API.
"""

import numpy as np
import pytest

from repro.core import mixed_precision_policy, quantize_model, select_parameters
from repro.data import generate_mnli
from repro.models import build_model
from repro.quant import Q8BertQuantizer, QBertQuantizer, build_quantizer
from repro.training import Trainer, evaluate
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def finetuned():
    splits = generate_mnli(num_train=192, num_eval=96, rng=0)
    model = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=1)
    Trainer(model, lr=2e-3, batch_size=16, rng=2).fit(splits.train, epochs=4)
    return model, splits


class TestGoboPipeline:
    def test_high_bit_quantization_tracks_baseline(self, finetuned):
        model, splits = finetuned
        baseline = evaluate(model, splits.eval)
        quantized = quantize_model(model, weight_bits=6, embedding_bits=6)
        probe = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=9)
        quantized.apply_to(probe)
        assert abs(evaluate(probe, splits.eval) - baseline) <= 0.1

    def test_two_bit_quantization_degrades(self, finetuned):
        model, splits = finetuned
        baseline = evaluate(model, splits.eval)
        quantized = quantize_model(model, weight_bits=2, embedding_bits=2)
        probe = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=9)
        quantized.apply_to(probe)
        degraded = evaluate(probe, splits.eval)
        assert degraded <= baseline

    def test_decode_is_plug_in_compatible(self, finetuned):
        """The decoded state dict drops into a fresh model of the same
        architecture with no shape or name changes."""
        model, _ = finetuned
        quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
        state = quantized.state_dict()
        assert set(state) == set(model.state_dict())
        probe = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=9)
        probe.load_state_dict(state)

    def test_mixed_policy_pipeline(self, finetuned):
        model, splits = finetuned
        policy = mixed_precision_policy(1, sensitive_bits=4, default_bits=3)
        quantized = quantize_model(model, weight_bits=policy, embedding_bits=None)
        probe = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=9)
        quantized.apply_to(probe)
        assert 0.0 <= evaluate(probe, splits.eval) <= 1.0


class TestBaselinePipelines:
    @pytest.mark.parametrize("spec", ["q8bert", "qbert-3bit", "gobo-4bit"])
    def test_registry_quantizers_end_to_end(self, finetuned, spec):
        model, splits = finetuned
        selection = select_parameters(model)
        compressed = build_quantizer(spec).compress(
            model.state_dict(), selection.fc_names, selection.embedding_names
        )
        probe = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=9)
        probe.load_state_dict(compressed.state_dict())
        assert 0.0 <= evaluate(probe, splits.eval) <= 1.0
        if spec != "qbert-3bit":
            assert compressed.compression_ratio() > 2.0
        else:
            # Q-BERT's 128 dictionaries per layer swamp micro-sized layers —
            # exactly the per-group overhead Figure 3's curve quantifies and
            # GOBO's single-table-per-layer design avoids.
            assert compressed.compression_ratio() < 2.0

    def test_qbert_compresses_when_groups_fit(self, finetuned):
        model, _ = finetuned
        selection = select_parameters(model)
        compressed = QBertQuantizer(weight_bits=3, num_groups=2).compress(
            model.state_dict(), selection.fc_names, selection.embedding_names
        )
        assert compressed.compression_ratio() > 2.0

    def test_q8bert_less_compression_than_gobo(self, finetuned):
        model, _ = finetuned
        selection = select_parameters(model)
        state = model.state_dict()
        q8 = Q8BertQuantizer().compress(state, selection.fc_names, selection.embedding_names)
        gobo = build_quantizer("gobo-3bit").compress(
            state, selection.fc_names, selection.embedding_names
        )
        assert gobo.compression_ratio() > q8.compression_ratio()

    def test_qbert_reconstruction_differs_from_q8bert(self, finetuned):
        model, _ = finetuned
        selection = select_parameters(model)
        state = model.state_dict()
        name = selection.fc_names[0]
        qb = QBertQuantizer(weight_bits=3, num_groups=4).compress(
            state, (name,), ()
        )
        q8 = Q8BertQuantizer().compress(state, (name,), ())
        assert not np.array_equal(
            qb.tensors[name].reconstructed, q8.tensors[name].reconstructed
        )
