"""Tests for the roofline latency model."""

import pytest

from repro.hw.latency import gobo_speedup, inference_latency
from repro.hw.spec import EDGE_NPU, SERVER_ACCELERATOR, HardwareSpec
from repro.models.config import BERT_BASE, BERT_LARGE
from tests.conftest import MICRO_CONFIG


class TestHardwareSpec:
    def test_ridge_intensity(self):
        spec = HardwareSpec("x", flops_per_second=100.0, dram_bytes_per_second=10.0)
        assert spec.ridge_intensity == 10.0

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            HardwareSpec("x", flops_per_second=0.0, dram_bytes_per_second=1.0)


class TestInferenceLatency:
    def test_bert_is_memory_bound_on_edge(self):
        """The paper's premise: short sequences make FC layers weight-bound."""
        report = inference_latency(BERT_BASE, EDGE_NPU, sequence_length=128)
        assert report.memory_bound_fraction == 1.0
        assert report.latency_seconds == pytest.approx(report.memory_seconds)

    def test_latency_at_least_max_of_components(self):
        report = inference_latency(BERT_BASE, EDGE_NPU)
        assert report.latency_seconds >= report.compute_seconds
        assert report.latency_seconds >= report.memory_seconds

    def test_larger_model_slower(self):
        base = inference_latency(BERT_BASE, EDGE_NPU)
        large = inference_latency(BERT_LARGE, EDGE_NPU)
        assert large.latency_seconds > 2 * base.latency_seconds

    def test_compression_cuts_memory_time(self):
        fp32 = inference_latency(BERT_BASE, EDGE_NPU, effective_weight_bits=32.0)
        gobo = inference_latency(BERT_BASE, EDGE_NPU, effective_weight_bits=3.07)
        assert gobo.memory_seconds == pytest.approx(
            fp32.memory_seconds * 3.07 / 32.0, rel=0.01
        )

    def test_long_sequences_shift_toward_compute(self):
        short = inference_latency(MICRO_CONFIG, SERVER_ACCELERATOR, sequence_length=8)
        long = inference_latency(MICRO_CONFIG, SERVER_ACCELERATOR, sequence_length=4096)
        assert long.memory_bound_fraction <= short.memory_bound_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            inference_latency(BERT_BASE, EDGE_NPU, sequence_length=0)
        with pytest.raises(ValueError):
            inference_latency(BERT_BASE, EDGE_NPU, effective_weight_bits=0)


class TestGoboSpeedup:
    def test_short_sequences_get_full_compression_speedup(self):
        """At short sequences the FC layers stay memory-bound even after
        compression, so latency falls by the full ~10.4x traffic cut."""
        speedup = gobo_speedup(
            BERT_BASE, EDGE_NPU, sequence_length=16, effective_weight_bits=3.07
        )
        assert speedup == pytest.approx(32.0 / 3.07, rel=0.01)

    def test_long_sequences_cap_at_compute_roofline(self):
        """At seq 128 compression flips layers to compute-bound: the speedup
        is capped by the roofline, not the compression ratio."""
        speedup = gobo_speedup(
            BERT_BASE, EDGE_NPU, sequence_length=128, effective_weight_bits=3.07
        )
        assert 1.5 < speedup < 32.0 / 3.07

    def test_speedup_bounded_by_compression_ratio(self):
        for seq in (8, 32, 128, 512):
            speedup = gobo_speedup(BERT_BASE, EDGE_NPU, sequence_length=seq)
            assert 1.0 <= speedup <= 32.0 / 3.07 + 1e-9

    def test_compute_rich_machine_gains_less_or_equal(self):
        edge = gobo_speedup(BERT_BASE, EDGE_NPU, sequence_length=16)
        server = gobo_speedup(BERT_BASE, SERVER_ACCELERATOR, sequence_length=16)
        assert server <= edge + 1e-9

    def test_more_bits_less_speedup(self):
        s3 = gobo_speedup(BERT_BASE, EDGE_NPU, sequence_length=16, effective_weight_bits=3.07)
        s4 = gobo_speedup(BERT_BASE, EDGE_NPU, sequence_length=16, effective_weight_bits=4.07)
        assert s3 > s4 > 1.0
