"""Lookup-kernel correctness: lookup matmul ≡ dequantize-then-matmul.

The correctness bar from the kernels issue: bit-exact in float64 (checked on
exactly-representable inputs, where any misrouted weight changes the exact
sum), within 1e-6 relative in float32, across bits 2-8, outlier fractions
including 0 and 1, and empty/degenerate tensors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantizer import GoboQuantizedTensor, quantize_tensor
from repro.errors import ShapeError
from repro.kernels import LookupKernel, dequantize_matmul, lookup_matmul
from repro.utils.bitpack import pack_bits
from repro.utils.rng import derive_rng


def make_tensor(
    rng: np.random.Generator,
    shape: tuple[int, int],
    bits: int,
    outlier_fraction: float,
    dyadic: bool = False,
) -> GoboQuantizedTensor:
    """Hand-build a quantized tensor with exact control over every field.

    ``dyadic=True`` draws centroids and outliers from powers of two, so
    products against integer activations are exact in float64 and the
    lookup/dequantize comparison can demand bit equality.
    """
    total = int(np.prod(shape))
    n_centroids = 1 << bits
    if dyadic:
        centroids = 2.0 ** rng.integers(-4, 4, size=n_centroids).astype(np.float64)
        centroids *= rng.choice([-1.0, 1.0], size=n_centroids)
    else:
        centroids = np.sort(rng.normal(size=n_centroids))
    n_outliers = int(round(total * outlier_fraction))
    positions = np.sort(rng.choice(total, size=n_outliers, replace=False)).astype(np.int64)
    if dyadic:
        values = 2.0 ** rng.integers(-2, 6, size=n_outliers).astype(np.float64)
        values *= rng.choice([-1.0, 1.0], size=n_outliers)
    else:
        values = rng.normal(size=n_outliers) * 4.0
    codes = rng.integers(0, n_centroids, size=total - n_outliers)
    return GoboQuantizedTensor(
        shape=shape,
        bits=bits,
        centroids=centroids,
        packed_codes=pack_bits(codes, bits),
        outlier_positions=positions,
        outlier_values=values,
    )


class TestEquivalence:
    @pytest.mark.parametrize("bits", range(2, 9))
    @pytest.mark.parametrize("outlier_fraction", [0.0, 0.02, 0.5])
    def test_matches_dequantize_float64(self, bits, outlier_fraction):
        rng = derive_rng(20260807, "kernel-eq", bits, int(outlier_fraction * 100))
        tensor = make_tensor(rng, (13, 17), bits, outlier_fraction)
        x = rng.normal(size=(5, 17))
        np.testing.assert_allclose(
            LookupKernel(tensor).matmul(x),
            dequantize_matmul(x, tensor),
            rtol=1e-12,
            atol=1e-12,
        )

    @pytest.mark.parametrize("bits", [2, 3, 4, 8])
    def test_bit_exact_float64_on_exact_inputs(self, bits):
        """Integer activations x dyadic centroids: every partial product is
        exact in float64, so any summation order gives the same bits and
        the kernel must agree with the dequantize path *exactly*.  This
        catches any misrouted code/outlier with probability ~1."""
        rng = derive_rng(20260807, "kernel-exact", bits)
        tensor = make_tensor(rng, (24, 31), bits, 0.05, dyadic=True)
        x = rng.integers(-8, 9, size=(4, 31)).astype(np.float64)
        lookup = LookupKernel(tensor).matmul(x)
        reference = dequantize_matmul(x, tensor)
        assert lookup.dtype == np.float64
        np.testing.assert_array_equal(lookup, reference)

    def test_float32_within_relative_tolerance(self):
        rng = derive_rng(20260807, "kernel-f32")
        tensor = make_tensor(rng, (48, 64), 3, 0.01)
        x = rng.normal(size=(8, 64)).astype(np.float32)
        lookup = LookupKernel(tensor).matmul(x)
        reference = dequantize_matmul(x, tensor)
        assert lookup.dtype == np.float32
        # Relative to the output scale: the two paths sum in different
        # orders, so per-element relative error is unbounded under
        # cancellation, but the error relative to the result magnitude
        # must stay within float32 noise.
        scale = float(np.max(np.abs(reference)))
        assert float(np.max(np.abs(lookup - reference))) < 1e-6 * scale

    def test_matches_real_quantizer_output(self):
        rng = derive_rng(20260807, "kernel-real")
        weights = rng.normal(scale=0.05, size=(40, 56))
        tensor, _ = quantize_tensor(weights, bits=3)
        x = rng.normal(size=(3, 56))
        np.testing.assert_allclose(
            lookup_matmul(x, tensor), dequantize_matmul(x, tensor), rtol=1e-12, atol=1e-12
        )

    def test_all_outliers(self):
        """gaussian_count == 0: every weight is an FP32 correction."""
        rng = derive_rng(20260807, "kernel-all-out")
        tensor = make_tensor(rng, (6, 9), 3, 1.0)
        x = rng.normal(size=(2, 9))
        np.testing.assert_allclose(
            LookupKernel(tensor).matmul(x),
            dequantize_matmul(x, tensor),
            rtol=1e-12,
            atol=1e-12,
        )

    @given(
        rows=st.integers(min_value=0, max_value=12),
        cols=st.integers(min_value=0, max_value=12),
        batch=st.integers(min_value=1, max_value=4),
        bits=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_shapes(self, rows, cols, batch, bits, seed):
        """Satellite property test: lookup ≡ dequantize for random shapes,
        bits 2-8, outlier fraction 0, including empty tensors."""
        rng = np.random.default_rng(seed)
        tensor = make_tensor(rng, (rows, cols), bits, 0.0)
        x = rng.normal(size=(batch, cols))
        np.testing.assert_allclose(
            LookupKernel(tensor).matmul(x),
            dequantize_matmul(x, tensor),
            rtol=1e-12,
            atol=1e-12,
        )


class TestShapes:
    def test_vector_input(self):
        rng = derive_rng(20260807, "kernel-vec")
        tensor = make_tensor(rng, (7, 11), 3, 0.1)
        x = rng.normal(size=11)
        result = LookupKernel(tensor).matmul(x)
        assert result.shape == (7,)
        np.testing.assert_allclose(result, dequantize_matmul(x, tensor), rtol=1e-12)

    def test_3d_batch(self):
        rng = derive_rng(20260807, "kernel-3d")
        tensor = make_tensor(rng, (10, 6), 4, 0.0)
        x = rng.normal(size=(2, 3, 6))
        result = LookupKernel(tensor).matmul(x)
        assert result.shape == (2, 3, 10)
        np.testing.assert_allclose(result, dequantize_matmul(x, tensor), rtol=1e-12)

    def test_empty_rows(self):
        rng = derive_rng(20260807, "kernel-empty-rows")
        tensor = make_tensor(rng, (0, 5), 3, 0.0)
        assert LookupKernel(tensor).matmul(rng.normal(size=(4, 5))).shape == (4, 0)

    def test_empty_cols(self):
        rng = derive_rng(20260807, "kernel-empty-cols")
        tensor = make_tensor(rng, (5, 0), 3, 0.0)
        result = LookupKernel(tensor).matmul(np.empty((4, 0)))
        assert result.shape == (4, 5)
        np.testing.assert_array_equal(result, np.zeros((4, 5)))

    def test_wrong_last_dim_rejected(self):
        rng = derive_rng(20260807, "kernel-baddim")
        tensor = make_tensor(rng, (5, 8), 3, 0.0)
        with pytest.raises(ShapeError, match="last dim 8"):
            LookupKernel(tensor).matmul(np.zeros((2, 9)))
        with pytest.raises(ShapeError, match="last dim 8"):
            dequantize_matmul(np.zeros((2, 9)), tensor)

    def test_non_2d_tensor_rejected(self):
        rng = derive_rng(20260807, "kernel-1d")
        tensor = make_tensor(rng, (4, 5), 3, 0.0)
        flat = GoboQuantizedTensor(
            shape=(20,),
            bits=tensor.bits,
            centroids=tensor.centroids,
            packed_codes=tensor.packed_codes,
            outlier_positions=tensor.outlier_positions,
            outlier_values=tensor.outlier_values,
        )
        with pytest.raises(ShapeError, match="2-D"):
            LookupKernel(flat)
        with pytest.raises(ShapeError, match="2-D"):
            dequantize_matmul(np.zeros(20), flat)


class TestChunking:
    def test_chunked_batch_matches_unchunked(self, monkeypatch):
        import repro.kernels.lookup as lookup_module

        rng = derive_rng(20260807, "kernel-chunk")
        tensor = make_tensor(rng, (9, 14), 3, 0.05)
        x = rng.normal(size=(17, 14))
        full = LookupKernel(tensor).matmul(x)
        monkeypatch.setattr(lookup_module, "_CHUNK_ELEMENTS", 9 * 14 * 2)
        chunked = LookupKernel(tensor).matmul(x)
        np.testing.assert_array_equal(full, chunked)

    @pytest.mark.parametrize("chunk_rows", [1, 2, 3, 5, 17, 100])
    def test_outlier_correction_chunked(self, monkeypatch, chunk_rows):
        """Satellite regression: the outlier gather runs per chunk, so an
        outlier-heavy layer under a large micro-batch must give identical
        results at every chunk size (including chunk = 1 row and chunk >
        rows), not just when the whole batch fits one chunk."""
        import repro.kernels.lookup as lookup_module

        rng = derive_rng(20260807, "kernel-chunk-out", chunk_rows)
        tensor = make_tensor(rng, (9, 14), 3, 0.4)  # outlier-heavy
        x = rng.normal(size=(17, 14))
        reference = dequantize_matmul(x, tensor)
        monkeypatch.setattr(lookup_module, "_CHUNK_ELEMENTS", 9 * 14 * chunk_rows)
        chunked = LookupKernel(tensor).matmul(x)
        np.testing.assert_allclose(chunked, reference, rtol=1e-12, atol=1e-12)

    def test_outlier_temporary_is_chunk_bounded(self, monkeypatch):
        """The correction gather must see only one chunk of rows at a time."""
        import repro.kernels.lookup as lookup_module

        rng = derive_rng(20260807, "kernel-chunk-bound")
        tensor = make_tensor(rng, (6, 8), 3, 0.5)
        kernel = LookupKernel(tensor)
        monkeypatch.setattr(lookup_module, "_CHUNK_ELEMENTS", 6 * 8 * 2)

        seen_rows = []

        class AddProxy:
            @staticmethod
            def reduceat(*args, **kwargs):
                return np.add.reduceat(*args, **kwargs)

            @staticmethod
            def at(target, *args, **kwargs):
                seen_rows.append(target.shape[0])
                return np.add.at(target, *args, **kwargs)

        class NpProxy:
            add = AddProxy()

            def __getattr__(self, name):
                return getattr(np, name)

        monkeypatch.setattr(lookup_module, "np", NpProxy())
        kernel.matmul(rng.normal(size=(11, 8)))
        assert seen_rows  # outliers present, the correction ran
        assert max(seen_rows) <= 2  # never the whole 11-row batch at once


class TestObservability:
    def test_no_dequantize_on_lookup_path(self):
        """The whole point: LookupKernel never touches dequantize()."""
        from repro import obs

        rng = derive_rng(20260807, "kernel-obs")
        tensor = make_tensor(rng, (12, 15), 3, 0.1)
        kernel = LookupKernel(tensor)
        x = rng.normal(size=(2, 15))
        with obs.scope() as trace:
            kernel.matmul(x)
        names = [event["name"] for event in trace.events]
        assert "quantizer.dequantize_calls" not in names
        assert "kernels.lookup_matmul_calls" in names

    def test_dequantize_baseline_counts(self):
        from repro import obs

        rng = derive_rng(20260807, "kernel-obs2")
        tensor = make_tensor(rng, (12, 15), 3, 0.1)
        with obs.scope() as trace:
            dequantize_matmul(rng.normal(size=(2, 15)), tensor)
        names = [event["name"] for event in trace.events]
        assert "quantizer.dequantize_calls" in names

    def test_prepared_nbytes_positive(self):
        rng = derive_rng(20260807, "kernel-bytes")
        tensor = make_tensor(rng, (12, 15), 3, 0.1)
        assert LookupKernel(tensor).prepared_nbytes > 0
