"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import BertConfig
from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# A micro config: big enough to exercise every code path, small enough that
# forward/backward passes take milliseconds.
MICRO_CONFIG = BertConfig(
    name="micro",
    vocab_size=96,
    hidden_size=16,
    num_layers=2,
    num_heads=2,
    intermediate_size=32,
    max_position=32,
    dropout_rate=0.0,
    initializer_std=0.06,
)


@pytest.fixture
def micro_config() -> BertConfig:
    return MICRO_CONFIG


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = fn(x)
        flat[i] = original - eps
        low = fn(x)
        flat[i] = original
        grad_flat[i] = (high - low) / (2 * eps)
    return grad


def assert_autograd_matches(build_scalar, x: np.ndarray, atol: float = 1e-6):
    """Check a Tensor-graph gradient against the numeric gradient.

    ``build_scalar(tensor)`` must return a scalar Tensor built from ``tensor``.
    """
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build_scalar(tensor)
    out.backward()
    analytic = tensor.grad.copy()

    def evaluate(values: np.ndarray) -> float:
        probe = Tensor(values.copy(), requires_grad=False)
        return float(build_scalar(probe).data.reshape(()))

    numeric = numeric_gradient(evaluate, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)
