"""The checksummed JSONL journal: prefix-safe reads, torn-tail recovery."""

import pytest

from repro.errors import JobStateError
from repro.jobs.journal import (
    JobJournal,
    decode_line,
    encode_line,
    read_journal,
    record_checksum,
)

META = {"type": "job-meta", "version": 1, "fingerprint": "abc", "jobs": [["a", 3]]}
DONE = {"type": "layer-done", "name": "a", "bits": 3, "shard": "shards/a.npz",
        "shard_sha256": "0" * 64, "size": 10, "record": {"name": "a"}}


class TestLineCodec:
    def test_round_trip(self):
        assert decode_line(encode_line(META).rstrip(b"\n")) == META

    def test_unknown_type_rejected_at_encode(self):
        with pytest.raises(JobStateError):
            encode_line({"type": "mystery"})

    def test_corrupt_line_decodes_to_none(self):
        line = encode_line(META).rstrip(b"\n")
        assert decode_line(line[:-5]) is None  # truncated json
        assert decode_line(b"not json at all") is None
        assert decode_line(b'{"r": 3, "sha256": "x"}') is None

    def test_tampered_payload_fails_checksum(self):
        line = encode_line(DONE)
        tampered = line.replace(b'"bits":3', b'"bits":4')
        assert tampered != line
        assert decode_line(tampered.rstrip(b"\n")) is None

    def test_checksum_is_canonical(self):
        # Key order must not matter: the checksum covers sorted-key JSON.
        shuffled = dict(reversed(list(META.items())))
        assert record_checksum(shuffled) == record_checksum(META)


class TestReadJournal:
    def test_missing_file_is_empty_and_intact(self, tmp_path):
        result = read_journal(tmp_path / "journal.jsonl")
        assert result.records == [] and result.intact and result.valid_bytes == 0

    def test_reads_all_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(encode_line(META) + encode_line(DONE))
        result = read_journal(path)
        assert [r["type"] for r in result.records] == ["job-meta", "layer-done"]
        assert result.intact
        assert result.valid_bytes == path.stat().st_size
        assert result.meta == META
        assert result.of_type("layer-done") == [DONE]

    def test_torn_tail_keeps_valid_prefix(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        full = encode_line(META) + encode_line(DONE)
        path.write_bytes(full + encode_line(DONE)[:17])  # crash mid-append
        result = read_journal(path)
        assert [r["type"] for r in result.records] == ["job-meta", "layer-done"]
        assert not result.intact
        assert result.valid_bytes == len(full)

    def test_mid_file_corruption_stops_the_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        meta = encode_line(META)
        path.write_bytes(meta + b"garbage\n" + encode_line(DONE))
        result = read_journal(path)
        # Everything after the bad line is untrusted, even if well-formed.
        assert [r["type"] for r in result.records] == ["job-meta"]
        assert not result.intact
        assert result.valid_bytes == len(meta)


class TestJobJournal:
    def test_append_then_read(self, tmp_path):
        journal = JobJournal(tmp_path / "job")
        journal.append(META)
        journal.append(DONE)
        assert [r["type"] for r in journal.read().records] == ["job-meta", "layer-done"]

    def test_recover_truncates_torn_tail(self, tmp_path):
        journal = JobJournal(tmp_path / "job")
        journal.append(META)
        valid = journal.path.stat().st_size
        with open(journal.path, "ab") as handle:
            handle.write(b'{"r": {"type": "layer-done"')  # torn append
        result = journal.recover()
        assert [r["type"] for r in result.records] == ["job-meta"]
        assert journal.path.stat().st_size == valid
        # Appending after recovery produces a well-formed journal again.
        journal.append(DONE)
        assert journal.read().intact

    def test_append_emits_byte_counter(self, tmp_path):
        from repro import obs

        journal = JobJournal(tmp_path / "job")
        with obs.scope() as scoped:
            written = journal.append(META)
        snapshot = scoped.snapshot()
        assert snapshot.counter("job.journal_bytes") == written == journal.path.stat().st_size
