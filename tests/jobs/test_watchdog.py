"""Watchdog deadlines, cooperative checkpoints, and transient-retry helpers."""

import time

import numpy as np
import pytest

from repro.errors import LayerTimeoutError, QuantizationError
from repro.jobs.retry import backoff_delay, is_transient
from repro.jobs.watchdog import (
    Deadline,
    Watchdog,
    checkpoint,
    current_deadline,
    deadline_scope,
)


class TestDeadline:
    def test_checkpoint_is_noop_without_deadline(self):
        assert current_deadline() is None
        checkpoint()  # must not raise

    def test_expired_deadline_raises_at_checkpoint(self):
        deadline = Deadline(1e-6, label="layerX")
        time.sleep(0.002)
        with deadline_scope(deadline):
            with pytest.raises(LayerTimeoutError, match="layerX"):
                checkpoint()

    def test_unexpired_deadline_passes(self):
        with deadline_scope(Deadline(60.0, label="ok")):
            checkpoint()

    def test_expire_now_flags_immediately(self):
        deadline = Deadline(60.0, label="flagged")
        deadline.expire_now()
        with deadline_scope(deadline):
            with pytest.raises(LayerTimeoutError):
                checkpoint()

    def test_scope_nests_and_restores(self):
        outer, inner = Deadline(60.0, label="outer"), Deadline(60.0, label="inner")
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_none_scope_accepted(self):
        with deadline_scope(None):
            checkpoint()


class TestWatchdog:
    def test_flags_expired_deadline(self):
        deadline = Deadline(0.02, label="hung-layer")
        with Watchdog(poll_interval=0.005) as dog:
            dog.register(deadline)
            time.sleep(0.08)
        assert deadline.flagged
        assert "hung-layer" in dog.stalled

    def test_unregistered_deadline_untouched(self):
        deadline = Deadline(0.02, label="done-in-time")
        with Watchdog(poll_interval=0.005) as dog:
            dog.register(deadline)
            dog.unregister(deadline)
            time.sleep(0.05)
        assert not deadline.flagged


class TestEngineTimeout:
    """The engine converts hangs into LayerTimeoutError / timeout failures."""

    def _state(self):
        rng = np.random.default_rng(7)
        return {name: rng.normal(size=(24, 24)) for name in ("a", "b", "c")}

    def test_hang_times_out_under_fail(self):
        from repro.core.parallel import LayerJob, quantize_layers
        from repro.testing.faults import HangOnLayer

        jobs = [LayerJob(n, 3) for n in ("a", "b", "c")]
        with pytest.raises(LayerTimeoutError):
            quantize_layers(
                self._state(), jobs, layer_timeout=0.1,
                fault_injector=HangOnLayer("b"),
            )

    @pytest.mark.parametrize("on_error", ["skip", "fp32-fallback", "retry-higher-bits"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_hang_becomes_timeout_failure(self, on_error, workers):
        from repro.core.parallel import LayerJob, quantize_layers
        from repro.testing.faults import HangOnLayer

        jobs = [LayerJob(n, 3) for n in ("a", "b", "c")]
        started = time.monotonic()
        quantized, _, report = quantize_layers(
            self._state(), jobs, layer_timeout=0.15, workers=workers,
            on_error=on_error, fault_injector=HangOnLayer("b"),
        )
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, "timeout took far longer than deadline + grace"
        (failure,) = report.failures
        assert failure.name == "b" and failure.action == "timeout"
        # A timed-out layer is never quantized; under skip it is dropped
        # outright, otherwise it resolves to FP32 fallback.
        assert set(quantized) == {"a", "c"}
        assert failure.dropped == (on_error == "skip")

    def test_slow_layer_within_deadline_is_bit_identical(self):
        from repro.core.parallel import LayerJob, quantize_layers
        from repro.testing.faults import SlowLayer

        state = self._state()
        jobs = [LayerJob(n, 3) for n in state]
        clean, _, _ = quantize_layers(state, jobs)
        slow, _, report = quantize_layers(
            state, jobs, layer_timeout=30.0, fault_injector=SlowLayer(0.05),
        )
        assert report.ok
        for name in clean:
            assert clean[name].packed_codes == slow[name].packed_codes
            assert np.array_equal(clean[name].centroids, slow[name].centroids)

    def test_bad_timeout_rejected(self):
        from repro.core.parallel import LayerJob, quantize_layers

        with pytest.raises(QuantizationError):
            quantize_layers(self._state(), [LayerJob("a", 3)], layer_timeout=-1.0)


class TestTransientRetry:
    def test_is_transient_classification(self):
        assert is_transient(OSError("disk hiccup"))
        assert not is_transient(ValueError("logic bug"))
        assert not is_transient(LayerTimeoutError("deadline"))

    def test_backoff_grows_and_caps(self):
        delays = [backoff_delay(a, base=0.1, cap=1.0, key="k") for a in range(8)]
        assert all(d > 0 for d in delays)
        # Jitter stays within +/-25%, so the cap bounds every delay.
        assert max(delays) <= 1.25
        assert delays[0] < 0.15

    def test_backoff_deterministic_per_key(self):
        assert backoff_delay(2, key="a") == backoff_delay(2, key="a")
        assert backoff_delay(2, key="a") != backoff_delay(2, key="b")

    def test_engine_absorbs_transient_faults_bit_identically(self):
        from repro.core.parallel import LayerJob, quantize_layers
        from repro.testing.faults import TransientIOFault

        rng = np.random.default_rng(8)
        state = {name: rng.normal(size=(24, 24)) for name in ("a", "b")}
        jobs = [LayerJob(n, 3) for n in state]
        clean, _, _ = quantize_layers(state, jobs)
        retried, _, report = quantize_layers(
            state, jobs, transient_retries=2, transient_backoff=0.001,
            fault_injector=TransientIOFault("a", times=2),
        )
        assert report.ok and not report.failures
        for name in clean:
            assert clean[name].packed_codes == retried[name].packed_codes

    def test_exhausted_retries_escalate_to_policy(self):
        from repro.core.parallel import LayerJob, quantize_layers
        from repro.testing.faults import TransientIOFault

        rng = np.random.default_rng(9)
        state = {"a": rng.normal(size=(24, 24))}
        _, _, report = quantize_layers(
            state, [LayerJob("a", 3)], transient_retries=1, transient_backoff=0.001,
            on_error="fp32-fallback", fault_injector=TransientIOFault("a", times=5),
        )
        (failure,) = report.failures
        assert failure.action == "fp32-fallback"
        assert failure.transient_retries == 1

    def test_retry_counter_emitted(self):
        from repro import obs
        from repro.core.parallel import LayerJob, quantize_layers
        from repro.testing.faults import TransientIOFault

        rng = np.random.default_rng(10)
        state = {"a": rng.normal(size=(24, 24))}
        with obs.scope() as scoped:
            quantize_layers(
                state, [LayerJob("a", 3)], transient_retries=3,
                transient_backoff=0.001,
                fault_injector=TransientIOFault("a", times=2),
            )
        assert scoped.snapshot().counter("engine.retry") == 2

    def test_env_defaults(self, monkeypatch):
        from repro.core.parallel import (
            resolve_layer_timeout,
            resolve_transient_retries,
        )

        monkeypatch.setenv("REPRO_LAYER_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_TRANSIENT_RETRIES", "4")
        assert resolve_layer_timeout(None) == 2.5
        assert resolve_transient_retries(None) == 4
        assert resolve_layer_timeout(1.0) == 1.0
        assert resolve_transient_retries(0) == 0
