"""Supervised process-fleet engine: determinism, supervision plumbing, config.

The contract under test is the headline guarantee of ``backend="process"``:
archive bytes identical to the thread backend at every worker count, with the
supervision machinery (heartbeats, leases, worker-local traces) invisible in
the output.  Chaos scenarios — killed, muted and hung workers — live in
``test_fleet_chaos.py``; this module covers the happy path and the unit
surface (liveness ledger, lenient trace reader, validation of the knobs).
"""

import json

import pytest

from repro.core.model_quantizer import quantize_state_dict
from repro.core.parallel import (
    BACKEND_ENV,
    LayerJob,
    quantize_layers,
    resolve_backend,
)
from repro.core.serialization import save_quantized_model
from repro.errors import QuantizationError
from repro.jobs.fleet import (
    default_heartbeat_interval,
    default_heartbeat_timeout,
    default_max_reassignments,
    run_fleet_layers,
)
from repro.jobs.runner import durable_quantize_state_dict, job_status
from repro.jobs.watchdog import LivenessMonitor
from repro.obs import recorder as obs
from repro.obs.events import read_trace_lenient
from repro.obs.sinks import JsonlSink
from repro.testing.faults import InjectedFault, RaiseOnLayer
from repro.utils.rng import derive_rng

FC_NAMES = tuple(f"layer{i}.weight" for i in range(6))
# Fast supervision for tests: beat every 50 ms, declare death after 5 s.
FLEET_KW = dict(heartbeat_interval=0.05, heartbeat_timeout=5.0)


@pytest.fixture(scope="module")
def state():
    rng = derive_rng(4242, "jobs-fleet")
    state = {name: rng.normal(0.0, 0.04, size=(24, 24)) for name in FC_NAMES}
    state["passthrough.bias"] = rng.normal(0.0, 0.01, size=24)
    return state


@pytest.fixture(scope="module")
def thread_archive(state, tmp_path_factory):
    """Archive bytes of the reference single-thread run."""
    path = tmp_path_factory.mktemp("fleet-ref") / "thread.npz"
    model = quantize_state_dict(state, fc_names=FC_NAMES, workers=1)
    save_quantized_model(model, path)
    return path.read_bytes()


def _archive_bytes(model, path):
    save_quantized_model(model, path)
    return path.read_bytes()


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_backend_matches_thread(
        self, state, thread_archive, tmp_path, workers
    ):
        model = quantize_state_dict(
            state, fc_names=FC_NAMES, workers=workers, backend="process"
        )
        assert model.report.backend == "process"
        assert model.report.worker_deaths == 0
        assert model.report.reassignments == 0
        assert _archive_bytes(model, tmp_path / "fleet.npz") == thread_archive

    def test_durable_fleet_run_matches_thread(self, state, thread_archive, tmp_path):
        job_dir = tmp_path / "job"
        model = durable_quantize_state_dict(
            state,
            fc_names=FC_NAMES,
            workers=2,
            backend="process",
            job_dir=job_dir,
        )
        assert _archive_bytes(model, tmp_path / "fleet.npz") == thread_archive
        # Leases went through the journal, and the completed job holds none.
        records = [
            json.loads(line)["r"]["type"]
            for line in (job_dir / "journal.jsonl").read_text().splitlines()
        ]
        assert "lease" in records
        status = job_status(job_dir)
        assert status.complete and not status.active_leases
        assert status.worker_deaths == 0 and status.broken_leases == 0


class TestSupervisionPlumbing:
    def test_worker_events_merged_into_report(self, state, tmp_path):
        jobs = [LayerJob(name, 3) for name in FC_NAMES]
        _, _, report = run_fleet_layers(
            state, jobs, workers=2, obs_dir=tmp_path, **FLEET_KW
        )
        # Worker-local traces were written and merged: spans recorded inside
        # the worker processes show up in the supervisor's snapshot.
        traces = sorted(tmp_path.glob("worker-*.jsonl"))
        assert traces and all(t.stat().st_size > 0 for t in traces)
        assert report.metrics is not None
        assert "fleet.task" in report.metrics.spans
        assert "engine.layer" in report.metrics.spans
        assert report.metrics.counters["fleet.leases"] == len(jobs)

    def test_transient_fault_absorbed_inside_worker(self, state, thread_archive, tmp_path):
        model = quantize_state_dict(
            state, fc_names=FC_NAMES, workers=2, backend="process"
        )
        faulted = run_fleet_layers(
            state,
            [LayerJob(name, 3) for name in FC_NAMES],
            workers=2,
            transient_retries=3,
            fault_spec="transient-io:0:2",
            **FLEET_KW,
        )
        quantized, _, report = faulted
        assert not report.failures
        assert report.metrics.counters["engine.retry"] >= 2
        # The retried layer is still bit-exact.
        name = FC_NAMES[0]
        assert quantized[name].packed_codes == model.quantized[name].packed_codes

    def test_worker_error_propagates_under_on_error_fail(self, state):
        # The worker's exception crosses the pipe with its type intact.
        with pytest.raises(InjectedFault, match="injected"):
            run_fleet_layers(
                state,
                [LayerJob(name, 3) for name in FC_NAMES],
                workers=2,
                fault_spec="raise:2",
                **FLEET_KW,
            )

    def test_on_error_skip_drops_only_the_failed_layer(self, state):
        quantized, _, report = run_fleet_layers(
            state,
            [LayerJob(name, 3) for name in FC_NAMES],
            workers=2,
            on_error="skip",
            fault_spec=f"raise:{FC_NAMES[2]}",
            **FLEET_KW,
        )
        assert set(quantized) == set(FC_NAMES) - {FC_NAMES[2]}
        assert [f.name for f in report.failures] == [FC_NAMES[2]]
        assert report.failures[0].dropped

    def test_empty_jobs_short_circuits(self, state):
        quantized, iterations, report = run_fleet_layers(state, [], workers=4)
        assert quantized == {} and iterations == {}
        assert report.backend == "process"


class TestConfigValidation:
    def test_fault_injector_object_rejected(self, state):
        with pytest.raises(QuantizationError, match="REPRO_FAULTS"):
            run_fleet_layers(
                state,
                [LayerJob(FC_NAMES[0], 3)],
                fault_injector=RaiseOnLayer(0),
            )

    def test_injector_object_rejected_through_quantize_state_dict(self, state):
        with pytest.raises(QuantizationError, match="REPRO_FAULTS"):
            quantize_state_dict(
                state,
                fc_names=FC_NAMES,
                backend="process",
                fault_injector=RaiseOnLayer(0),
            )

    def test_timeout_must_exceed_interval(self, state):
        with pytest.raises(QuantizationError, match="heartbeat"):
            run_fleet_layers(
                state,
                [LayerJob(FC_NAMES[0], 3)],
                heartbeat_interval=1.0,
                heartbeat_timeout=0.5,
            )

    def test_bad_fault_spec_rejected_before_spawn(self, state):
        with pytest.raises(QuantizationError, match="fault spec"):
            run_fleet_layers(
                state,
                [LayerJob(FC_NAMES[0], 3)],
                fault_spec="kill-worker:not-a-number",
            )

    def test_missing_tensor_rejected(self, state):
        with pytest.raises(QuantizationError, match="missing"):
            run_fleet_layers(state, [LayerJob("no.such.tensor", 3)])

    @pytest.mark.parametrize(
        "env, reader",
        [
            ("REPRO_HEARTBEAT_INTERVAL", default_heartbeat_interval),
            ("REPRO_HEARTBEAT_TIMEOUT", default_heartbeat_timeout),
            ("REPRO_MAX_REASSIGNMENTS", default_max_reassignments),
        ],
    )
    def test_bad_env_values_rejected(self, monkeypatch, env, reader):
        monkeypatch.setenv(env, "not-a-number")
        with pytest.raises(QuantizationError, match=env):
            reader()
        monkeypatch.setenv(env, "-1")
        with pytest.raises(QuantizationError):
            reader()

    def test_resolve_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "thread"
        assert resolve_backend("process") == "process"
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend(None) == "process"
        with pytest.raises(QuantizationError, match="backend"):
            resolve_backend("carrier-pigeon")
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(QuantizationError, match="backend"):
            resolve_backend(None)


class TestLivenessMonitor:
    def test_silence_is_relative_to_last_beat(self):
        monitor = LivenessMonitor(timeout=1.0)
        monitor.beat("a", now=0.0)
        monitor.beat("b", now=0.0)
        assert monitor.silent(now=0.5) == []
        monitor.beat("b", now=0.9)
        assert monitor.silent(now=1.5) == ["a"]
        assert monitor.silent(now=2.5) == ["a", "b"]

    def test_forget_stops_tracking(self):
        monitor = LivenessMonitor(timeout=1.0)
        monitor.beat("a", now=0.0)
        monitor.forget("a")
        assert monitor.tracked() == []
        assert monitor.silent(now=10.0) == []

    def test_timeout_must_be_positive(self):
        with pytest.raises(QuantizationError):
            LivenessMonitor(timeout=0.0)


class TestTraceMergeUnits:
    def _record_trace(self, path):
        sink = obs.install(JsonlSink(path))
        try:
            with obs.scope():
                with obs.span("unit.work"):
                    obs.counter("unit.count", 3)
        finally:
            obs.uninstall(sink)
            sink.close()

    def test_lenient_reader_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "worker-0.jsonl"
        self._record_trace(path)
        whole, skipped = read_trace_lenient(path)
        assert skipped == 0 and len(whole) == 2  # one counter + one span close
        # A SIGKILL mid-write leaves a torn final line; everything before it
        # must still be recovered.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "event": "counter", "na')
        events, skipped = read_trace_lenient(path)
        assert skipped == 1
        assert [e["name"] for e in events] == [e["name"] for e in whole]

    def test_replay_feeds_events_into_active_scope(self, tmp_path):
        path = tmp_path / "worker-0.jsonl"
        self._record_trace(path)
        events, _ = read_trace_lenient(path)
        with obs.scope() as scoped:
            assert obs.replay(events) == len(events)
            snapshot = scoped.snapshot()
        assert snapshot.counters["unit.count"] == 3
        assert "unit.work" in snapshot.spans

    def test_replay_is_a_no_op_when_inactive(self, tmp_path):
        path = tmp_path / "worker-0.jsonl"
        self._record_trace(path)
        events, _ = read_trace_lenient(path)
        assert obs.replay(events) == 0
