"""Graceful interruption and real-process kill/resume, via subprocesses.

In-process tests cover the GracefulInterrupt wiring; the subprocess tests
are the honest end-to-end proof: a real ``python -m repro quantize`` gets a
real SIGINT (drain, exit 75) or SIGKILL (via ``REPRO_FAULTS=crash:N``), and
``--resume`` completes the job to a byte-identical archive.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.jobs.signals import DRAIN_SIGNALS, EXIT_INTERRUPTED, GracefulInterrupt

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop("REPRO_FAULTS", None)
    env.update(extra)
    return env


def _quantize_cmd(*args):
    return [sys.executable, "-m", "repro", "quantize", "--config", "tiny-bert-base",
            "--embedding-bits", "none", *args]


class TestGracefulInterrupt:
    def test_first_signal_sets_event(self, capsys):
        with GracefulInterrupt() as interrupt:
            assert not interrupt.triggered
            os.kill(os.getpid(), signal.SIGINT)
            # Signal delivery is synchronous for the main thread on CPython.
            assert interrupt.triggered
            assert interrupt.signum == signal.SIGINT
        assert "draining" in capsys.readouterr().err

    def test_handlers_restored_on_exit(self):
        previous = {sig: signal.getsignal(sig) for sig in DRAIN_SIGNALS}
        with GracefulInterrupt():
            for sig in DRAIN_SIGNALS:
                assert signal.getsignal(sig) != previous[sig]
        for sig in DRAIN_SIGNALS:
            assert signal.getsignal(sig) == previous[sig]

    def test_exit_code_constant_documented_value(self):
        assert EXIT_INTERRUPTED == 75  # BSD sysexits EX_TEMPFAIL


@pytest.mark.slow
class TestSubprocessKillResume:
    """The CI kill-and-resume scenario, as a test."""

    def _clean_archive(self, tmp_path) -> bytes:
        out = tmp_path / "clean.npz"
        subprocess.run(
            _quantize_cmd("--out", str(out)), env=_env(), check=True,
            capture_output=True, timeout=120,
        )
        return out.read_bytes()

    def test_sigkill_then_resume_byte_identical(self, tmp_path):
        baseline = self._clean_archive(tmp_path)
        job_dir = tmp_path / "job"
        # crash:5 SIGKILLs the worker on its 5th layer; layers 1-4 are
        # already journaled when the process dies.
        crashed = subprocess.run(
            _quantize_cmd("--job-dir", str(job_dir), "--out", str(tmp_path / "x.npz")),
            env=_env(REPRO_FAULTS="crash:5"), capture_output=True, timeout=120,
        )
        assert crashed.returncode == -signal.SIGKILL
        assert (job_dir / "journal.jsonl").exists()
        resumed_out = tmp_path / "resumed.npz"
        resumed = subprocess.run(
            _quantize_cmd("--job-dir", str(job_dir), "--resume",
                          "--workers", "4", "--out", str(resumed_out)),
            env=_env(), capture_output=True, text=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed:" in resumed.stdout
        assert resumed_out.read_bytes() == baseline

    def test_sigint_drains_and_exits_75(self, tmp_path):
        job_dir = tmp_path / "job"
        # Slow every layer down so the interrupt lands mid-run.
        proc = subprocess.Popen(
            _quantize_cmd("--job-dir", str(job_dir), "--workers", "2"),
            env=_env(REPRO_FAULTS="slow:0.15"),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        deadline = time.monotonic() + 60
        # Wait for the journal to appear so the run is demonstrably underway.
        while time.monotonic() < deadline and not (job_dir / "journal.jsonl").exists():
            time.sleep(0.05)
        time.sleep(0.4)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == EXIT_INTERRUPTED, stderr
        assert "draining" in stderr
        assert "rerun with" in stderr
        # The journal is valid and reports progress.
        status = subprocess.run(
            [sys.executable, "-m", "repro", "jobs", "status", str(job_dir)],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert "pending" in status.stdout or "complete" in status.stdout
        # And the interrupted job resumes to completion.
        resumed = subprocess.run(
            _quantize_cmd("--job-dir", str(job_dir), "--resume"),
            env=_env(), capture_output=True, text=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        final = subprocess.run(
            [sys.executable, "-m", "repro", "jobs", "status", str(job_dir)],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert final.returncode == 0
        assert "complete" in final.stdout
