"""Resume determinism: a killed-and-resumed run equals an uninterrupted one.

The acceptance bar for the durability subsystem is *byte* identity: the
final ``.npz`` archive of a run that died mid-flight and was resumed must
equal, byte for byte, the archive of a run that never died — for every
worker count and with tracing on or off.  The deterministic zip writer
makes the comparison meaningful.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.model_quantizer import quantize_state_dict
from repro.core.parallel import LayerJob, quantize_layers
from repro.core.serialization import save_quantized_model
from repro.errors import JobStateError
from repro.jobs.runner import (
    ShardCorruptionWarning,
    durable_quantize_state_dict,
    job_fingerprint,
    job_status,
    load_shard,
    render_status,
    run_durable_layers,
    save_shard,
)
from repro.testing.faults import InjectedFault, RaiseOnLayer, corrupt_bytes
from repro.utils.rng import derive_rng

FC_NAMES = tuple(f"layer{i}.weight" for i in range(5))


@pytest.fixture(scope="module")
def state():
    rng = derive_rng(4242, "jobs-resume")
    state = {name: rng.normal(0.0, 0.04, size=(24, 24)) for name in FC_NAMES}
    state["passthrough.bias"] = rng.normal(0.0, 0.01, size=24)
    return state


def _clean_archive(state, path):
    model = quantize_state_dict(state, fc_names=FC_NAMES, workers=1)
    save_quantized_model(model, path)
    return path.read_bytes()


class TestShards:
    def test_shard_round_trip_is_bit_exact(self, state, tmp_path):
        jobs = [LayerJob(n, 3) for n in FC_NAMES]
        quantized, iterations, _ = quantize_layers(state, jobs)
        name = FC_NAMES[0]
        relpath, sha, size = save_shard(tmp_path, name, quantized[name], iterations[name])
        assert size == (tmp_path / relpath).stat().st_size
        loaded_name, tensor, its = load_shard(tmp_path / relpath)
        assert loaded_name == name and its == iterations[name]
        original = quantized[name]
        assert tensor.packed_codes == original.packed_codes
        assert np.array_equal(tensor.centroids, original.centroids)
        assert tensor.centroids.dtype == original.centroids.dtype
        assert np.array_equal(tensor.outlier_positions, original.outlier_positions)
        assert np.array_equal(tensor.outlier_values, original.outlier_values)
        assert tensor.shape == original.shape and tensor.bits == original.bits

    def test_corrupt_shard_detected(self, state, tmp_path):
        from repro.errors import ChecksumMismatchError, SerializationError

        jobs = [LayerJob(FC_NAMES[0], 3)]
        quantized, iterations, _ = quantize_layers(state, jobs)
        relpath, _, _ = save_shard(
            tmp_path, FC_NAMES[0], quantized[FC_NAMES[0]], iterations[FC_NAMES[0]]
        )
        # Flip a byte inside array data (late offsets can land in ZIP
        # central-directory fields that parse fine — those flips are caught
        # by the journaled whole-file SHA-256 on resume instead).
        corrupt_bytes(tmp_path / relpath, (tmp_path / relpath).stat().st_size // 4)
        with pytest.raises((ChecksumMismatchError, SerializationError)):
            load_shard(tmp_path / relpath)


class TestFingerprint:
    def test_stable_and_sensitive(self):
        jobs = [LayerJob("a", 3), LayerJob("b", 4)]
        base = dict(method="gobo", log_prob_threshold=-4.0, validation="strict",
                    on_error="fail", max_iterations=50)
        fp = job_fingerprint(jobs, **base)
        assert fp == job_fingerprint(list(jobs), **base)
        assert fp != job_fingerprint(jobs[:1], **base)
        assert fp != job_fingerprint([LayerJob("a", 4), LayerJob("b", 4)], **base)
        assert fp != job_fingerprint(jobs, **{**base, "method": "kmeans"})
        assert fp != job_fingerprint(jobs, **{**base, "on_error": "skip"})
        assert fp != job_fingerprint(jobs, **base, extra={"seed": 1})


class TestResumeDeterminism:
    """The tentpole guarantee, exercised across workers x tracing."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("traced", [False, True])
    def test_killed_then_resumed_equals_uninterrupted(
        self, state, tmp_path, workers, traced
    ):
        baseline = _clean_archive(state, tmp_path / "clean.npz")
        job_dir = tmp_path / f"job-w{workers}-t{traced}"
        sink = obs.MemorySink()
        if traced:
            obs.install(sink)
        try:
            # "Kill" the first run mid-flight: a poisoned layer under
            # on_error=fail aborts the engine, but every layer that finished
            # before the abort is already journaled (the hook is durable per
            # layer, not per run).
            with pytest.raises(InjectedFault):
                durable_quantize_state_dict(
                    state, fc_names=FC_NAMES, workers=workers,
                    job_dir=job_dir, fault_injector=RaiseOnLayer(FC_NAMES[3]),
                )
            status = job_status(job_dir)
            assert status.pending, "the aborted run should leave pending layers"
            resumed = durable_quantize_state_dict(
                state, fc_names=FC_NAMES, workers=workers,
                job_dir=job_dir, resume=True,
            )
        finally:
            if traced:
                obs.uninstall(sink)
        save_quantized_model(resumed, tmp_path / "resumed.npz")
        assert (tmp_path / "resumed.npz").read_bytes() == baseline
        assert resumed.report.resumed_layers == len(status.completed)
        assert job_status(job_dir).complete

    @pytest.mark.parametrize("resume_workers", [1, 4])
    def test_resume_across_worker_counts(self, state, tmp_path, resume_workers):
        baseline = _clean_archive(state, tmp_path / "clean.npz")
        job_dir = tmp_path / f"job-rw{resume_workers}"
        with pytest.raises(InjectedFault):
            durable_quantize_state_dict(
                state, fc_names=FC_NAMES, workers=2,
                job_dir=job_dir, fault_injector=RaiseOnLayer(FC_NAMES[2]),
            )
        resumed = durable_quantize_state_dict(
            state, fc_names=FC_NAMES, workers=resume_workers,
            job_dir=job_dir, resume=True,
        )
        save_quantized_model(resumed, tmp_path / "resumed.npz")
        assert (tmp_path / "resumed.npz").read_bytes() == baseline

    def test_fresh_durable_run_matches_plain_run(self, state, tmp_path):
        baseline = _clean_archive(state, tmp_path / "clean.npz")
        model = durable_quantize_state_dict(
            state, fc_names=FC_NAMES, workers=3, job_dir=tmp_path / "job"
        )
        save_quantized_model(model, tmp_path / "durable.npz")
        assert (tmp_path / "durable.npz").read_bytes() == baseline
        assert job_status(tmp_path / "job").complete

    def test_resume_of_complete_job_loads_everything(self, state, tmp_path):
        baseline = _clean_archive(state, tmp_path / "clean.npz")
        job_dir = tmp_path / "job"
        durable_quantize_state_dict(state, fc_names=FC_NAMES, job_dir=job_dir)
        with obs.scope() as scoped:
            model = durable_quantize_state_dict(
                state, fc_names=FC_NAMES, job_dir=job_dir, resume=True
            )
        assert model.report.resumed_layers == len(FC_NAMES)
        assert scoped.snapshot().counter("job.resumed_layers") == len(FC_NAMES)
        save_quantized_model(model, tmp_path / "resumed.npz")
        assert (tmp_path / "resumed.npz").read_bytes() == baseline


class TestResumeSafety:
    def test_existing_journal_requires_resume_flag(self, state, tmp_path):
        jobs = [LayerJob(n, 3) for n in FC_NAMES]
        run_durable_layers(state, jobs, job_dir=tmp_path / "job")
        with pytest.raises(JobStateError, match="resume"):
            run_durable_layers(state, jobs, job_dir=tmp_path / "job")

    def test_fingerprint_mismatch_refused(self, state, tmp_path):
        jobs = [LayerJob(n, 3) for n in FC_NAMES]
        run_durable_layers(state, jobs, job_dir=tmp_path / "job")
        with pytest.raises(JobStateError, match="fingerprint"):
            run_durable_layers(state, jobs[:3], job_dir=tmp_path / "job", resume=True)
        with pytest.raises(JobStateError, match="fingerprint"):
            run_durable_layers(
                state, jobs, job_dir=tmp_path / "job", resume=True, method="kmeans"
            )

    def test_duplicate_layer_names_rejected(self, state, tmp_path):
        jobs = [LayerJob(FC_NAMES[0], 3), LayerJob(FC_NAMES[0], 4)]
        with pytest.raises(JobStateError, match="unique"):
            run_durable_layers(state, jobs, job_dir=tmp_path / "job")

    def test_corrupt_shard_requantizes_that_layer(self, state, tmp_path):
        baseline = _clean_archive(state, tmp_path / "clean.npz")
        job_dir = tmp_path / "job"
        durable_quantize_state_dict(state, fc_names=FC_NAMES, job_dir=job_dir)
        status = job_status(job_dir)
        # Bit-rot one journaled shard; resume must notice, warn, and redo it.
        shard = next((job_dir / "shards").glob("*.npz"))
        corrupt_bytes(shard, shard.stat().st_size // 2)
        with obs.scope() as scoped, pytest.warns(ShardCorruptionWarning):
            model = durable_quantize_state_dict(
                state, fc_names=FC_NAMES, job_dir=job_dir, resume=True
            )
        assert scoped.snapshot().counter("job.shard_requantized") == 1
        assert model.report.resumed_layers == len(status.completed) - 1
        save_quantized_model(model, tmp_path / "resumed.npz")
        assert (tmp_path / "resumed.npz").read_bytes() == baseline

    def test_torn_journal_tail_recovered_on_resume(self, state, tmp_path):
        baseline = _clean_archive(state, tmp_path / "clean.npz")
        job_dir = tmp_path / "job"
        with pytest.raises(InjectedFault):
            durable_quantize_state_dict(
                state, fc_names=FC_NAMES, job_dir=job_dir,
                fault_injector=RaiseOnLayer(FC_NAMES[4]),
            )
        # Simulate SIGKILL mid-append: garbage bytes after the last record.
        with open(job_dir / "journal.jsonl", "ab") as handle:
            handle.write(b'{"r": {"type": "layer-do')
        assert not job_status(job_dir).intact
        model = durable_quantize_state_dict(
            state, fc_names=FC_NAMES, job_dir=job_dir, resume=True
        )
        save_quantized_model(model, tmp_path / "resumed.npz")
        assert (tmp_path / "resumed.npz").read_bytes() == baseline
        assert job_status(job_dir).intact

    def test_journaled_failures_are_final_on_resume(self, state, tmp_path):
        jobs = [LayerJob(n, 3) for n in FC_NAMES]
        _, _, first = run_durable_layers(
            state, jobs, job_dir=tmp_path / "job", on_error="fp32-fallback",
            fault_injector=RaiseOnLayer(FC_NAMES[1]),
        )
        assert [f.name for f in first.failures] == [FC_NAMES[1]]
        # Resume WITHOUT the fault injector: the journaled failure persists
        # rather than silently re-running the layer.
        quantized, _, second = run_durable_layers(
            state, jobs, job_dir=tmp_path / "job", resume=True,
            on_error="fp32-fallback",
        )
        assert [f.name for f in second.failures] == [FC_NAMES[1]]
        assert FC_NAMES[1] not in quantized


class TestStatus:
    def test_status_counts_and_render(self, state, tmp_path):
        job_dir = tmp_path / "job"
        with pytest.raises(InjectedFault):
            durable_quantize_state_dict(
                state, fc_names=FC_NAMES, job_dir=job_dir,
                fault_injector=RaiseOnLayer(FC_NAMES[3]),
            )
        status = job_status(job_dir)
        assert len(status.jobs) == len(FC_NAMES)
        assert not status.complete and status.state == "incomplete"
        assert set(status.completed) | set(status.pending) == set(FC_NAMES)
        text = render_status(status)
        assert "pending" in text and str(len(FC_NAMES)) in text

    def test_status_on_non_job_dir_raises(self, tmp_path):
        with pytest.raises(JobStateError):
            job_status(tmp_path)
