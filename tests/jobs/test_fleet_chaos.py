"""Process-level chaos: the fleet survives killed, muted and hung workers.

Every scenario asserts the same invariant from two sides: the supervision
machinery reacts (worker declared dead, layer reassigned, timeout failure
recorded) *and* the final archive is byte-identical to an undisturbed
single-thread run.  The subprocess test at the bottom is the end-to-end
proof for the whole fleet dying at once: SIGKILL the supervisor itself,
then ``--resume`` completes the job to the same bytes.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.model_quantizer import quantize_state_dict
from repro.core.parallel import LayerJob
from repro.core.serialization import save_quantized_model
from repro.errors import WorkerCrashError
from repro.jobs.fleet import run_fleet_layers
from repro.jobs.runner import durable_quantize_state_dict, job_status, render_status
from repro.utils.rng import derive_rng

FC_NAMES = tuple(f"layer{i}.weight" for i in range(6))
FLEET_KW = dict(heartbeat_interval=0.05, heartbeat_timeout=5.0)
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def state():
    rng = derive_rng(4242, "jobs-fleet-chaos")
    state = {name: rng.normal(0.0, 0.04, size=(24, 24)) for name in FC_NAMES}
    state["passthrough.bias"] = rng.normal(0.0, 0.01, size=24)
    return state


@pytest.fixture(scope="module")
def reference(state):
    """Quantized tensors of the undisturbed single-thread run."""
    jobs = [LayerJob(name, 3) for name in FC_NAMES]
    from repro.core.parallel import quantize_layers

    quantized, _, _ = quantize_layers(state, jobs)
    return quantized


def _assert_identical(quantized, reference):
    assert set(quantized) == set(reference)
    for name, tensor in quantized.items():
        assert tensor.packed_codes == reference[name].packed_codes, name


class TestWorkerDeath:
    def test_sigkilled_worker_costs_one_attempt(self, state, reference):
        quantized, _, report = run_fleet_layers(
            state,
            [LayerJob(name, 3) for name in FC_NAMES],
            workers=3,
            fault_spec="kill-worker:1",
            **FLEET_KW,
        )
        assert report.worker_deaths == 1
        assert report.reassignments == 1
        assert not report.failures
        _assert_identical(quantized, reference)

    def test_muted_worker_detected_and_replaced(self, state, reference):
        # Worker 1 stops beating mid-layer; the liveness monitor must kill
        # and replace it well before MuteWorker's 30 s harness bound.
        quantized, _, report = run_fleet_layers(
            state,
            [LayerJob(name, 3) for name in FC_NAMES],
            workers=2,
            fault_spec="mute-worker:1",
            heartbeat_interval=0.05,
            heartbeat_timeout=0.4,
        )
        assert report.worker_deaths == 1
        assert report.reassignments == 1
        _assert_identical(quantized, reference)

    def test_hung_worker_is_a_timeout_not_a_death(self, state):
        # The stall checkpoints, so the *worker-local* watchdog converts it
        # into an ordinary timeout failure while heartbeats keep flowing:
        # the worker survives and keeps taking tasks.
        quantized, _, report = run_fleet_layers(
            state,
            [LayerJob(name, 3) for name in FC_NAMES],
            workers=2,
            on_error="skip",
            layer_timeout=0.4,
            fault_spec="hang-worker:1:10",
            **FLEET_KW,
        )
        assert report.worker_deaths == 0
        assert len(report.failures) == 1
        assert report.failures[0].action == "timeout"
        assert len(quantized) == len(FC_NAMES) - 1

    def test_every_worker_dying_raises_worker_crash(self, state):
        with pytest.raises(WorkerCrashError, match="every fleet worker died"):
            run_fleet_layers(
                state,
                [LayerJob(name, 3) for name in FC_NAMES],
                workers=2,
                fault_spec="kill-worker:0,kill-worker:1",
                **FLEET_KW,
            )


class TestDurableChaos:
    def test_death_is_journaled_and_visible_in_status(
        self, state, reference, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "kill-worker:0")
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.05")
        job_dir = tmp_path / "job"
        model = durable_quantize_state_dict(
            state,
            fc_names=FC_NAMES,
            workers=2,
            backend="process",
            job_dir=job_dir,
        )
        _assert_identical(model.quantized, reference)
        status = job_status(job_dir)
        assert status.complete
        assert status.worker_deaths == 1
        assert status.broken_leases == 1
        assert not status.active_leases
        rendered = render_status(status)
        assert "1 worker death(s)" in rendered

    def test_chaos_spec_is_inert_on_thread_backend(
        self, state, reference, monkeypatch
    ):
        # The same REPRO_FAULTS spec must not perturb a thread run: worker
        # targeting only matches inside fleet processes.
        monkeypatch.setenv("REPRO_FAULTS", "kill-worker:0,mute-worker:1")
        from repro.testing.faults import injector_from_env

        model = quantize_state_dict(
            state,
            fc_names=FC_NAMES,
            workers=2,
            fault_injector=injector_from_env(),
        )
        _assert_identical(model.quantized, reference)


@pytest.mark.slow
class TestWholeFleetKill:
    """SIGKILL the supervisor itself; resume completes byte-identically."""

    def _env(self, **extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        env.pop("REPRO_FAULTS", None)
        env.update(extra)
        return env

    def _quantize_cmd(self, *args):
        return [
            sys.executable, "-m", "repro", "quantize",
            "--config", "tiny-bert-base", "--embedding-bits", "none", *args,
        ]

    def test_kill_whole_fleet_then_resume(self, tmp_path):
        clean = tmp_path / "clean.npz"
        resumed = tmp_path / "resumed.npz"
        job_dir = tmp_path / "job"
        subprocess.run(
            self._quantize_cmd("--out", str(clean)),
            env=self._env(), check=True, capture_output=True,
        )

        proc = subprocess.Popen(
            self._quantize_cmd(
                "--backend", "process", "--workers", "4",
                "--job-dir", str(job_dir), "--out", str(resumed),
            ),
            env=self._env(
                REPRO_FAULTS="slow:0.3",
                REPRO_HEARTBEAT_INTERVAL="0.05",
                REPRO_HEARTBEAT_TIMEOUT="3",
            ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal = job_dir / "journal.jsonl"
        deadline = time.monotonic() + 30
        while not journal.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert journal.exists(), "fleet run never journaled"
        time.sleep(0.8)  # let some layers finish, then die mid-flight
        os.kill(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=10) == -signal.SIGKILL

        # Orphaned workers notice the supervisor is gone (getppid watch)
        # and exit on their own within a couple of heartbeats.
        time.sleep(1.0)
        status = job_status(job_dir)
        if status.complete:
            pytest.skip("fleet finished before the SIGKILL landed")
        subprocess.run(
            self._quantize_cmd(
                "--backend", "process", "--workers", "4",
                "--job-dir", str(job_dir), "--resume", "--out", str(resumed),
            ),
            env=self._env(REPRO_HEARTBEAT_INTERVAL="0.05"),
            check=True, capture_output=True,
        )
        assert resumed.read_bytes() == clean.read_bytes()
        assert job_status(job_dir).complete
