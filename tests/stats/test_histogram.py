"""Tests for weight histograms."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.stats.histogram import layer_histograms, weight_histogram


class TestWeightHistogram:
    def test_counts_sum_to_total(self, rng):
        hist = weight_histogram(rng.normal(size=1234), bins=32)
        assert hist.total == 1234

    def test_centers_between_edges(self, rng):
        hist = weight_histogram(rng.normal(size=100), bins=10)
        assert len(hist.centers) == 10
        assert np.all(hist.centers > hist.edges[:-1])
        assert np.all(hist.centers < hist.edges[1:])

    def test_normalized_sums_to_one(self, rng):
        hist = weight_histogram(rng.normal(size=500))
        assert hist.normalized().sum() == pytest.approx(1.0)

    def test_normalized_empty_range(self):
        hist = weight_histogram(np.array([5.0]), bins=4, value_range=(0.0, 1.0))
        assert hist.normalized().sum() == 0.0

    def test_as_series(self, rng):
        series = weight_histogram(rng.normal(size=100), bins=5).as_series()
        assert len(series) == 5
        assert all(isinstance(c, float) and isinstance(n, int) for c, n in series)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            weight_histogram(np.array([]))


class TestLayerHistograms:
    def test_common_range(self, rng):
        layers = {"a": rng.normal(0, 0.01, 1000), "b": rng.normal(0, 0.1, 1000)}
        hists = layer_histograms(layers, bins=20)
        np.testing.assert_array_equal(hists["a"].edges, hists["b"].edges)

    def test_symmetric_range(self, rng):
        hists = layer_histograms({"x": rng.normal(size=100)}, bins=8)
        edges = hists["x"].edges
        assert edges[0] == pytest.approx(-edges[-1])

    def test_empty_dict(self):
        assert layer_histograms({}) == {}

    def test_all_zero_weights(self):
        hists = layer_histograms({"z": np.zeros(10)}, bins=4)
        assert hists["z"].total == 10
