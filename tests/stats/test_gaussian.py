"""Tests for the single-component Gaussian fit."""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NonFiniteWeightError, QuantizationError, ShapeError
from repro.stats.gaussian import GaussianFit


class TestFit:
    def test_mean_and_std(self, rng):
        data = rng.normal(2.0, 3.0, size=100000)
        fit = GaussianFit.fit(data)
        assert fit.mean == pytest.approx(2.0, abs=0.05)
        assert fit.std == pytest.approx(3.0, abs=0.05)

    def test_any_shape_accepted(self, rng):
        data = rng.normal(size=(10, 10, 3))
        assert GaussianFit.fit(data).std > 0

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            GaussianFit.fit(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            GaussianFit.fit(np.array([1.0, np.nan]))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            GaussianFit.fit(np.array([1.0, np.inf]))

    def test_non_finite_error_is_typed(self):
        """The rejection carries the typed error (still a ValueError) so the
        engine can classify it in a QuantizationReport."""
        with pytest.raises(NonFiniteWeightError) as excinfo:
            GaussianFit.fit(np.array([np.inf, 1.0]))
        assert isinstance(excinfo.value, QuantizationError)

    def test_uses_population_std(self):
        # ddof=0, matching sklearn's GaussianMixture variance estimate.
        data = np.array([0.0, 2.0])
        assert GaussianFit.fit(data).std == pytest.approx(1.0)

    def test_constant_tensor_fits_with_zero_std(self):
        """Regression: a zero-variance tensor must fit cleanly (std == 0)
        rather than dividing by zero downstream."""
        fit = GaussianFit.fit(np.full((8, 8), 0.75))
        assert fit.mean == pytest.approx(0.75)
        assert fit.std == 0.0

    def test_single_element_fits_with_zero_std(self):
        fit = GaussianFit.fit(np.array([3.0]))
        assert fit.mean == 3.0 and fit.std == 0.0


class TestLogPdf:
    def test_standard_normal_at_zero(self):
        fit = GaussianFit(mean=0.0, std=1.0)
        assert fit.log_pdf(np.array([0.0]))[0] == pytest.approx(
            -0.5 * math.log(2 * math.pi)
        )

    def test_matches_closed_form(self, rng):
        fit = GaussianFit(mean=0.5, std=0.2)
        x = rng.normal(size=50)
        expected = -((x - 0.5) ** 2) / (2 * 0.04) - math.log(0.2 * math.sqrt(2 * math.pi))
        np.testing.assert_allclose(fit.log_pdf(x), expected, rtol=1e-12)

    def test_pdf_is_exp_of_log_pdf(self):
        fit = GaussianFit(mean=0.0, std=2.0)
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(fit.pdf(x), np.exp(fit.log_pdf(x)))

    def test_degenerate_std(self):
        fit = GaussianFit(mean=1.0, std=0.0)
        scores = fit.log_pdf(np.array([1.0, 2.0]))
        assert scores[0] == np.inf and scores[1] == -np.inf

    def test_degenerate_fit_scores_without_warnings(self):
        """Regression: a constant tensor scored through the full fit +
        log_pdf + pdf path raises no RuntimeWarning (division or overflow)."""
        fit = GaussianFit.fit(np.full(16, -2.5))
        probe = np.array([-2.5, 0.0, 1e308])
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            scores = fit.log_pdf(probe)
            densities = fit.pdf(probe)
        assert scores[0] == np.inf and scores[1] == -np.inf
        assert densities[1] == 0.0

    def test_near_degenerate_std_overflow_is_silent(self):
        """A tiny-but-nonzero std can overflow z*z; the score saturates to
        -inf without a RuntimeWarning."""
        fit = GaussianFit(mean=0.0, std=5e-324)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            scores = fit.log_pdf(np.array([0.0, 1.0]))
            densities = fit.pdf(np.array([1.0]))
        assert scores[1] == -np.inf
        assert densities[0] == 0.0

    def test_score_samples_alias(self):
        fit = GaussianFit(mean=0.0, std=1.0)
        x = np.array([0.3, -0.7])
        np.testing.assert_array_equal(fit.score_samples(x), fit.log_pdf(x))

    @given(st.floats(min_value=-5, max_value=5), st.floats(min_value=0.01, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_log_pdf_maximum_at_mean(self, mean, std):
        fit = GaussianFit(mean=mean, std=std)
        probe = np.array([mean, mean + std, mean - 2 * std])
        scores = fit.log_pdf(probe)
        assert scores[0] >= scores[1] and scores[0] >= scores[2]


class TestInterval:
    def test_covers_expected_mass(self, rng):
        fit = GaussianFit(mean=0.0, std=1.0)
        lo, hi = fit.interval(0.999)
        assert lo == pytest.approx(-hi)
        assert hi == pytest.approx(3.2905, abs=1e-3)

    @pytest.mark.parametrize("coverage", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_coverage_rejected(self, coverage):
        with pytest.raises(ValueError):
            GaussianFit(mean=0.0, std=1.0).interval(coverage)
