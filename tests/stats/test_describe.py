"""Tests for weight summaries and Gaussian-overlap scoring."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.stats.describe import gaussian_overlap, summarize_weights


class TestSummarizeWeights:
    def test_basic_fields(self, rng):
        data = rng.normal(1.0, 2.0, size=10000)
        summary = summarize_weights(data)
        assert summary.count == 10000
        assert summary.mean == pytest.approx(1.0, abs=0.1)
        assert summary.std == pytest.approx(2.0, abs=0.1)
        assert summary.minimum < summary.maximum

    def test_gaussian_has_low_kurtosis(self, rng):
        data = rng.normal(size=50000)
        assert abs(summarize_weights(data).excess_kurtosis) < 0.15

    def test_heavy_tails_raise_kurtosis(self, rng):
        data = rng.normal(size=50000)
        data[:100] *= 20  # inject a fringe
        assert summarize_weights(data).excess_kurtosis > 1.0

    def test_range_in_sigmas(self):
        summary = summarize_weights(np.array([-1.0, 0.0, 1.0]))
        assert summary.range_in_sigmas == pytest.approx(2.0 / summary.std)

    def test_constant_data(self):
        summary = summarize_weights(np.full(10, 3.0))
        assert summary.std == 0.0
        assert summary.range_in_sigmas == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            summarize_weights(np.array([]))


class TestGaussianOverlap:
    def test_gaussian_scores_high(self, rng):
        assert gaussian_overlap(rng.normal(size=100000)) > 0.95

    def test_uniform_scores_lower(self, rng):
        uniform = rng.uniform(-1, 1, size=100000)
        assert gaussian_overlap(uniform) < gaussian_overlap(rng.normal(size=100000))

    def test_bimodal_scores_low(self, rng):
        bimodal = np.concatenate([rng.normal(-3, 0.1, 5000), rng.normal(3, 0.1, 5000)])
        assert gaussian_overlap(bimodal) < 0.6

    def test_constant_is_perfect(self):
        assert gaussian_overlap(np.full(100, 2.0)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            gaussian_overlap(np.array([]))
