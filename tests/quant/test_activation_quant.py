"""Tests for Q8BERT-style activation quantization."""

import numpy as np
import pytest

from repro.data import generate_mnli
from repro.models import build_model
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.quant import (
    disable_activation_quantization,
    enable_activation_quantization,
)
from repro.training import Trainer, evaluate
from tests.conftest import MICRO_CONFIG


class TestLinearHook:
    def test_hook_changes_inference_output(self, rng):
        layer = Linear(8, 4, rng=0)
        layer.eval()
        x = Tensor(rng.normal(size=(3, 8)))
        clean = layer(x).data.copy()
        enable_activation_quantization(layer, bits=2)  # very coarse
        quantized = layer(x).data
        assert not np.allclose(clean, quantized)

    def test_hook_inactive_in_training_mode(self, rng):
        layer = Linear(8, 4, rng=0)
        enable_activation_quantization(layer, bits=2)
        layer.train()
        x = Tensor(rng.normal(size=(3, 8)))
        reference = Linear(8, 4, rng=0)
        reference.train()
        np.testing.assert_allclose(layer(x).data, reference(x).data)

    def test_8bit_error_is_small(self, rng):
        layer = Linear(8, 4, rng=0)
        layer.eval()
        x = Tensor(rng.normal(size=(3, 8)))
        clean = layer(x).data.copy()
        enable_activation_quantization(layer, bits=8)
        quantized = layer(x).data
        assert np.abs(clean - quantized).max() < 0.01

    def test_disable_restores_exact_output(self, rng):
        layer = Linear(8, 4, rng=0)
        layer.eval()
        x = Tensor(rng.normal(size=(3, 8)))
        clean = layer(x).data.copy()
        enable_activation_quantization(layer, bits=4)
        removed = disable_activation_quantization(layer)
        assert removed == 1
        np.testing.assert_array_equal(layer(x).data, clean)


class TestModelLevel:
    def test_instruments_every_linear(self):
        model = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=0)
        count = enable_activation_quantization(model, bits=8)
        # 6 FC per encoder layer + pooler + classifier.
        assert count == MICRO_CONFIG.num_layers * 6 + 2

    def test_8bit_activations_keep_accuracy(self):
        splits = generate_mnli(num_train=96, num_eval=48, rng=0)
        model = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=1)
        Trainer(model, lr=2e-3, batch_size=16, rng=2).fit(splits.train, epochs=3)
        baseline = evaluate(model, splits.eval)
        enable_activation_quantization(model, bits=8)
        quantized = evaluate(model, splits.eval)
        assert abs(quantized - baseline) <= 0.05
        disable_activation_quantization(model)
        assert evaluate(model, splits.eval) == pytest.approx(baseline)