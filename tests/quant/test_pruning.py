"""Tests for magnitude pruning and the prune+GOBO composition."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant.pruning import (
    magnitude_prune,
    prune_then_quantize,
    pruned_storage,
)


@pytest.fixture
def weights(rng):
    return rng.normal(0, 0.04, size=(100, 100))


class TestMagnitudePrune:
    def test_target_sparsity_achieved(self, weights):
        pruned = magnitude_prune(weights, 0.4)
        sparsity = 1.0 - np.count_nonzero(pruned) / pruned.size
        assert sparsity == pytest.approx(0.4, abs=0.01)

    def test_smallest_magnitudes_removed(self, weights):
        pruned = magnitude_prune(weights, 0.3)
        zeroed = weights[pruned == 0.0]
        kept = weights[pruned != 0.0]
        assert np.abs(zeroed).max() <= np.abs(kept).min() + 1e-12

    def test_survivors_unchanged(self, weights):
        pruned = magnitude_prune(weights, 0.3)
        mask = pruned != 0.0
        np.testing.assert_array_equal(pruned[mask], weights[mask])

    def test_zero_sparsity_is_identity(self, weights):
        np.testing.assert_array_equal(magnitude_prune(weights, 0.0), weights)

    def test_invalid_sparsity(self, weights):
        with pytest.raises(QuantizationError):
            magnitude_prune(weights, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            magnitude_prune(np.array([]), 0.5)


class TestPrunedStorage:
    def test_ratio_at_paper_sparsity(self, weights):
        """30-40% pruning compresses far less than GOBO's ~10x — the paper's
        argument that pruning alone cannot match it."""
        report = pruned_storage(magnitude_prune(weights, 0.4))
        assert 1.3 < report.compression_ratio < 1.7

    def test_ninety_percent_needed_for_tenfold(self, weights):
        report = pruned_storage(magnitude_prune(weights, 0.9))
        assert report.compression_ratio > 7.0

    def test_bitmap_accounted(self):
        report = pruned_storage(np.zeros(64))
        assert report.compressed_bytes == 8  # 64-bit bitmap, no values


class TestPruneThenQuantize:
    def test_zeros_represented_exactly(self, weights):
        quantized, pruned = prune_then_quantize(weights, sparsity=0.4, bits=3)
        restored = quantized.dequantize()
        np.testing.assert_array_equal(restored[pruned == 0.0], 0.0)

    def test_survivor_error_comparable_to_plain_gobo(self, weights):
        quantized, pruned = prune_then_quantize(weights, sparsity=0.3, bits=3)
        restored = quantized.dequantize()
        mask = pruned != 0.0
        survivor_error = np.abs(restored[mask] - pruned[mask]).mean()
        assert survivor_error < 0.02

    def test_composition_keeps_gobo_compression(self, weights):
        quantized, _ = prune_then_quantize(weights, sparsity=0.4, bits=3)
        assert quantized.compression_ratio() > 9.0

    def test_higher_sparsity_lower_reconstruction_error(self, weights):
        """More zeros -> more probability mass exactly on a centroid."""
        dense_q, dense_p = prune_then_quantize(weights, 0.0, bits=3)
        sparse_q, sparse_p = prune_then_quantize(weights, 0.6, bits=3)
        dense_err = np.abs(dense_q.dequantize() - dense_p).mean()
        sparse_err = np.abs(sparse_q.dequantize() - sparse_p).mean()
        assert sparse_err < dense_err