"""Quantization-aware fine-tuning with the Q8BERT-style fake quantizer.

The original Q8BERT trains with a straight-through estimator so the model
adapts to 8-bit rounding.  This test exercises the same loop at micro scale:
fake-quantize the FC weights after every optimizer step, then verify the
final model evaluates identically whether or not its weights are re-quantized
(i.e. the training produced a quantization-fixed point).
"""

import numpy as np

from repro.core.model_quantizer import select_parameters
from repro.data import generate_mnli
from repro.models import build_model
from repro.quant import fake_quantize_model
from repro.training import Trainer, evaluate
from tests.conftest import MICRO_CONFIG


class TestQuantizationAwareTraining:
    def test_qat_loop_converges_to_quantized_weights(self):
        splits = generate_mnli(num_train=96, num_eval=48, rng=0)
        model = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=1)
        selection = select_parameters(model)
        names = selection.fc_names
        params = dict(model.named_parameters())

        trainer = Trainer(model, lr=2e-3, batch_size=16, rng=2)
        original_step = trainer.optimizer.step

        def quantizing_step():
            original_step()
            state = {name: params[name].data for name in names}
            quantized = fake_quantize_model(state, names, bits=8)
            for name in names:
                params[name].data[...] = quantized[name]

        trainer.optimizer.step = quantizing_step
        trainer.fit(splits.train, epochs=2)

        # The weights already sit on the 8-bit grid: re-quantizing them is a
        # no-op, so QAT eliminated post-training quantization error.
        state = model.state_dict()
        requantized = fake_quantize_model(state, names, bits=8)
        for name in names:
            np.testing.assert_allclose(requantized[name], state[name], atol=1e-12)

        before = evaluate(model, splits.eval)
        model.load_state_dict({**state, **{n: requantized[n] for n in names}})
        after = evaluate(model, splits.eval)
        assert after == before
