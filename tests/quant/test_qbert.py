"""Tests for the Q-BERT-like group-wise dictionary baseline."""

import numpy as np
import pytest

from repro.core.model_quantizer import select_parameters
from repro.errors import QuantizationError
from repro.models.heads import BertForSequenceClassification
from repro.quant.qbert import QBertQuantizer, quantize_groupwise
from tests.conftest import MICRO_CONFIG


class TestQuantizeGroupwise:
    def test_reconstruction_shape(self, rng):
        values = rng.normal(size=(40, 25))
        reconstructed, _ = quantize_groupwise(values, bits=3, num_groups=8)
        assert reconstructed.shape == (40, 25)

    def test_more_groups_lower_error(self, rng):
        # A piecewise-shifting distribution benefits from local dictionaries.
        values = np.concatenate(
            [rng.normal(loc, 0.01, 2500) for loc in (-0.3, -0.1, 0.1, 0.3)]
        )
        r1, _ = quantize_groupwise(values, bits=2, num_groups=1)
        r8, _ = quantize_groupwise(values, bits=2, num_groups=8)
        assert np.abs(r8 - values).mean() < np.abs(r1 - values).mean()

    def test_byte_cost_includes_dictionaries(self, rng):
        values = rng.normal(size=1024)
        _, nbytes = quantize_groupwise(values, bits=3, num_groups=4)
        expected = (1024 * 3 + 7) // 8 + 4 * 8 * 4
        # Per-group index packing rounds up per group.
        assert abs(nbytes - expected) <= 4

    def test_more_values_than_groups_not_required(self, rng):
        reconstructed, _ = quantize_groupwise(rng.normal(size=5), bits=2, num_groups=100)
        assert reconstructed.shape == (5,)

    def test_invalid_groups_rejected(self, rng):
        with pytest.raises(QuantizationError):
            quantize_groupwise(rng.normal(size=10), bits=3, num_groups=0)

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_groupwise(np.array([]), bits=3, num_groups=4)


class TestQBertQuantizer:
    @pytest.fixture(scope="class")
    def compressed(self):
        model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
        selection = select_parameters(model)
        quantizer = QBertQuantizer(weight_bits=3, num_groups=8)
        return model, quantizer.compress(
            model.state_dict(), selection.fc_names, selection.embedding_names
        )

    def test_embeddings_quantized_at_8_bits(self, compressed):
        model, result = compressed
        state = model.state_dict()
        name = "bert.embeddings.word_embeddings.weight"
        error = np.abs(result.tensors[name].reconstructed - state[name]).max()
        # 8-bit symmetric rounding error is half a scale step.
        scale = np.abs(state[name]).max() / 127
        assert error <= scale / 2 + 1e-12

    def test_compression_ratio_between_q8_and_gobo(self, compressed):
        # 3-bit weights + 8-bit embeddings + dictionaries. Micro layers pay
        # proportionally more dictionary overhead than real BERT (where the
        # ratio is ~7.8x), so the lower bound here is loose.
        _, result = compressed
        assert 2.5 < result.compression_ratio() < 10.7

    def test_reconstructed_state_loads(self, compressed):
        _, result = compressed
        probe = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=1)
        probe.load_state_dict(result.state_dict())

    def test_invalid_bits(self):
        with pytest.raises(QuantizationError):
            QBertQuantizer(weight_bits=0)
