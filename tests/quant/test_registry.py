"""Tests for the quantizer registry and the GOBO adapter."""

import numpy as np
import pytest

from repro.core.model_quantizer import select_parameters
from repro.errors import ConfigError
from repro.models.heads import BertForSequenceClassification
from repro.quant import (
    TABLE3_SPECS,
    GoboModelQuantizer,
    Q8BertQuantizer,
    QBertQuantizer,
    build_quantizer,
)
from tests.conftest import MICRO_CONFIG


class TestBuildQuantizer:
    def test_q8bert(self):
        assert isinstance(build_quantizer("q8bert"), Q8BertQuantizer)

    def test_qbert_bits_parsed(self):
        quantizer = build_quantizer("qbert-4bit")
        assert isinstance(quantizer, QBertQuantizer)
        assert quantizer.weight_bits == 4

    def test_gobo_bits_parsed(self):
        quantizer = build_quantizer("gobo-3bit")
        assert isinstance(quantizer, GoboModelQuantizer)
        assert quantizer.weight_bits == 3

    @pytest.mark.parametrize("spec", ["gob-3bit", "gobo-xbit", "gobo-9bit", ""])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            build_quantizer(spec)

    def test_table3_specs_all_buildable(self):
        for spec in TABLE3_SPECS:
            assert build_quantizer(spec) is not None


class TestGoboAdapter:
    @pytest.fixture(scope="class")
    def model(self):
        return BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)

    def test_compress_interface(self, model):
        selection = select_parameters(model)
        result = GoboModelQuantizer(weight_bits=3, embedding_bits=4).compress(
            model.state_dict(), selection.fc_names, selection.embedding_names
        )
        assert result.method == "gobo"
        assert set(result.tensors) == set(selection.fc_names + selection.embedding_names)

    def test_reconstruction_matches_core_path(self, model):
        from repro.core.model_quantizer import quantize_model

        selection = select_parameters(model)
        adapter = GoboModelQuantizer(weight_bits=3, embedding_bits=4).compress(
            model.state_dict(), selection.fc_names, selection.embedding_names
        )
        core = quantize_model(model, weight_bits=3, embedding_bits=4)
        for name in selection.fc_names:
            np.testing.assert_array_equal(
                adapter.tensors[name].reconstructed,
                core.quantized[name].dequantize(dtype=np.float64),
            )

    def test_no_finetuning_flag(self):
        assert GoboModelQuantizer().requires_finetuning is False
        assert Q8BertQuantizer().requires_finetuning is True

    def test_baseline_method_name(self):
        assert GoboModelQuantizer(method="kmeans").name == "gobo-kmeans"
