"""Tests for the quantizer registry and the GOBO adapter."""

import numpy as np
import pytest

from repro.core.model_quantizer import select_parameters
from repro.errors import ConfigError
from repro.models.heads import BertForSequenceClassification
from repro.quant import (
    TABLE3_SPECS,
    GoboModelQuantizer,
    GwqQuantizer,
    MethodFamily,
    MethodOption,
    MixedBitsQuantizer,
    Q8BertQuantizer,
    QBertQuantizer,
    ZeroShotQuantizer,
    available_specs,
    build_quantizer,
    describe_specs,
    parse_spec,
    register,
    unregister,
)
from tests.conftest import MICRO_CONFIG


class TestBuildQuantizer:
    def test_q8bert(self):
        assert isinstance(build_quantizer("q8bert"), Q8BertQuantizer)

    def test_qbert_bits_parsed(self):
        quantizer = build_quantizer("qbert-4bit")
        assert isinstance(quantizer, QBertQuantizer)
        assert quantizer.weight_bits == 4

    def test_gobo_bits_parsed(self):
        quantizer = build_quantizer("gobo-3bit")
        assert isinstance(quantizer, GoboModelQuantizer)
        assert quantizer.weight_bits == 3

    def test_zeroshot_default_bits(self):
        quantizer = build_quantizer("zeroshot")
        assert isinstance(quantizer, ZeroShotQuantizer)
        assert quantizer.bits == 8

    def test_gwq_multi_option_spec(self):
        quantizer = build_quantizer("gwq-4bit-2.5pct")
        assert isinstance(quantizer, GwqQuantizer)
        assert quantizer.weight_bits == 4
        assert quantizer.outlier_pct == 2.5

    def test_mixed_budget_parsed(self):
        quantizer = build_quantizer("mixed-15pct")
        assert isinstance(quantizer, MixedBitsQuantizer)
        assert quantizer.budget_pct == 15.0

    @pytest.mark.parametrize("spec", ["gob-3bit", "gobo-xbit", "gobo-9bit", ""])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            build_quantizer(spec)

    def test_table3_specs_all_buildable(self):
        for spec in TABLE3_SPECS:
            assert build_quantizer(spec) is not None


class TestSpecGrammarHardening:
    @pytest.mark.parametrize("spec", [
        "gwq-0bit",        # bits below the family minimum
        "mixed--1pct",     # empty token then a stray "1pct"? no: negative pct
        "mixed-0.5pct",    # budget below the family minimum
        "zeroshot-1bit",   # below zeroshot's 2-bit floor
        "qbert-3bit-3bit",  # duplicate option
        "gobo-3bit-4bit",  # duplicate option
        "q8bert-3bit",     # family takes no options
        "gwq-pct",         # suffix with no value
        "gobo--3bit",      # empty option token
    ])
    def test_malformed_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            build_quantizer(spec)

    @pytest.mark.parametrize("spec", ["bogus", "gwq-0bit", "mixed--1pct", ""])
    def test_errors_list_available_specs(self, spec):
        with pytest.raises(ConfigError) as excinfo:
            build_quantizer(spec)
        message = str(excinfo.value)
        assert "available specs" in message
        for known in available_specs():
            assert known in message

    def test_parse_spec_applies_defaults(self):
        family, values = parse_spec("gwq-4bit")
        assert family.name == "gwq"
        assert values == {"bits": 4, "pct": 1.0}


class TestRegistration:
    def test_duplicate_register_raises_not_overwrites(self):
        family = MethodFamily(
            name="contracttest",
            factory=lambda: ZeroShotQuantizer(),
            description="test-only family",
            canonical_specs=("contracttest",),
        )
        register(family)
        try:
            sentinel = MethodFamily(
                name="contracttest",
                factory=lambda: Q8BertQuantizer(),
                description="would shadow the first registration",
            )
            with pytest.raises(ConfigError):
                register(sentinel)
            # The original registration survived the rejected duplicate.
            assert isinstance(build_quantizer("contracttest"), ZeroShotQuantizer)
        finally:
            unregister("contracttest")

    def test_builtin_names_cannot_be_shadowed(self):
        with pytest.raises(ConfigError):
            register(MethodFamily(
                name="gobo", factory=lambda: None, description="shadow"
            ))

    def test_family_name_grammar_enforced(self):
        for bad in ("has-dash", "Upper", "spec with space", ""):
            with pytest.raises(ConfigError):
                register(MethodFamily(
                    name=bad, factory=lambda: None, description="bad name"
                ))

    def test_duplicate_option_suffixes_rejected(self):
        with pytest.raises(ConfigError):
            register(MethodFamily(
                name="twobits",
                factory=lambda bits: None,
                description="two options with one suffix",
                options=(
                    MethodOption("bits", "bit", 3, 1, 8),
                    MethodOption("other", "bit", 4, 1, 8),
                ),
            ))

    def test_registered_family_joins_available_specs(self):
        family = MethodFamily(
            name="freshfamily",
            factory=lambda: ZeroShotQuantizer(),
            description="shows up everywhere",
            canonical_specs=("freshfamily",),
        )
        register(family)
        try:
            assert "freshfamily" in available_specs()
            assert "freshfamily" in describe_specs()
        finally:
            unregister("freshfamily")
        assert "freshfamily" not in available_specs()

    def test_describe_specs_covers_every_family(self):
        text = describe_specs()
        for spec in available_specs():
            head = spec.partition("-")[0]
            assert head in text


class TestTensorMethodRegistry:
    def test_duplicate_tensor_method_raises(self):
        from repro.core.quantizer import (
            register_tensor_method,
            unregister_tensor_method,
        )

        def fake(weights, ctx):  # pragma: no cover - never invoked
            raise AssertionError

        register_tensor_method("contracttest_tm", fake)
        try:
            with pytest.raises(ConfigError):
                register_tensor_method("contracttest_tm", fake)
        finally:
            unregister_tensor_method("contracttest_tm")

    def test_unknown_tensor_method_lists_known(self):
        from repro.core.quantizer import resolve_tensor_method
        from repro.errors import QuantizationError

        with pytest.raises(QuantizationError) as excinfo:
            resolve_tensor_method("nope")
        assert "known methods" in str(excinfo.value)


class TestCliSpecSurface:
    def test_method_help_lists_available_specs(self, capsys):
        from repro.cli import main

        assert main(["quantize", "--method", "help"]) == 0
        out = capsys.readouterr().out
        for spec in available_specs():
            assert spec in out

    def test_unknown_method_error_lists_available_specs(self, capsys):
        from repro.cli import main

        assert main(["quantize", "--method", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "available specs" in err
        for spec in available_specs():
            assert spec in err


class TestGoboAdapter:
    @pytest.fixture(scope="class")
    def model(self):
        return BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)

    def test_compress_interface(self, model):
        selection = select_parameters(model)
        result = GoboModelQuantizer(weight_bits=3, embedding_bits=4).compress(
            model.state_dict(), selection.fc_names, selection.embedding_names
        )
        assert result.method == "gobo"
        assert set(result.tensors) == set(selection.fc_names + selection.embedding_names)

    def test_reconstruction_matches_core_path(self, model):
        from repro.core.model_quantizer import quantize_model

        selection = select_parameters(model)
        adapter = GoboModelQuantizer(weight_bits=3, embedding_bits=4).compress(
            model.state_dict(), selection.fc_names, selection.embedding_names
        )
        core = quantize_model(model, weight_bits=3, embedding_bits=4)
        for name in selection.fc_names:
            np.testing.assert_array_equal(
                adapter.tensors[name].reconstructed,
                core.quantized[name].dequantize(dtype=np.float64),
            )

    def test_no_finetuning_flag(self):
        assert GoboModelQuantizer().requires_finetuning is False
        assert Q8BertQuantizer().requires_finetuning is True

    def test_baseline_method_name(self):
        assert GoboModelQuantizer(method="kmeans").name == "gobo-kmeans"
