"""Tests for the Q8BERT-like fixed-point baseline."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.models.heads import BertForSequenceClassification
from repro.core.model_quantizer import select_parameters
from repro.quant.q8bert import (
    Q8BertQuantizer,
    fake_quantize_model,
    symmetric_dequantize,
    symmetric_quantize,
)
from tests.conftest import MICRO_CONFIG


class TestSymmetricQuantize:
    def test_round_trip_error_bounded(self, rng):
        values = rng.normal(0, 0.05, size=10000)
        codes, scale = symmetric_quantize(values, bits=8)
        restored = symmetric_dequantize(codes, scale)
        assert np.abs(restored - values).max() <= scale / 2 + 1e-12

    def test_codes_within_signed_range(self, rng):
        codes, _ = symmetric_quantize(rng.normal(size=1000), bits=8)
        assert codes.min() >= -128 and codes.max() <= 127

    def test_extreme_value_exactly_representable(self):
        values = np.array([-0.5, 0.25, 0.5])
        codes, scale = symmetric_quantize(values, bits=8)
        restored = symmetric_dequantize(codes, scale)
        assert restored[2] == pytest.approx(0.5)

    def test_all_zero_tensor(self):
        codes, scale = symmetric_quantize(np.zeros(10), bits=8)
        assert np.all(codes == 0) and scale == 1.0

    def test_fewer_bits_more_error(self, rng):
        values = rng.normal(size=5000)
        errors = []
        for bits in (4, 6, 8):
            codes, scale = symmetric_quantize(values, bits)
            errors.append(np.abs(symmetric_dequantize(codes, scale) - values).mean())
        assert errors[0] > errors[1] > errors[2]

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            symmetric_quantize(np.array([]))

    def test_invalid_bits(self):
        with pytest.raises(QuantizationError):
            symmetric_quantize(np.ones(4), bits=1)


class TestQ8BertQuantizer:
    @pytest.fixture(scope="class")
    def compressed(self):
        model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
        selection = select_parameters(model)
        return (
            model,
            Q8BertQuantizer().compress(
                model.state_dict(), selection.fc_names, selection.embedding_names
            ),
        )

    def test_compression_ratio_near_4x(self, compressed):
        # Exactly 4x asymptotically; micro tensors pay a tiny scale overhead.
        _, result = compressed
        assert result.compression_ratio() == pytest.approx(4.0, rel=0.05)

    def test_reconstruction_close(self, compressed):
        model, result = compressed
        state = model.state_dict()
        for name, tensor in result.tensors.items():
            error = np.abs(tensor.reconstructed - state[name]).mean()
            assert error < 0.01, name

    def test_state_dict_loadable(self, compressed):
        model, result = compressed
        probe = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=1)
        probe.load_state_dict(result.state_dict())

    def test_missing_tensor_rejected(self):
        with pytest.raises(QuantizationError):
            Q8BertQuantizer().compress({}, ("nope",), ())


class TestFakeQuantize:
    def test_only_selected_names_touched(self, rng):
        state = {"a": rng.normal(size=100), "b": rng.normal(size=100)}
        out = fake_quantize_model(state, ("a",), bits=4)
        assert not np.array_equal(out["a"], state["a"])
        np.testing.assert_array_equal(out["b"], state["b"])

    def test_idempotent(self, rng):
        state = {"a": rng.normal(size=100)}
        once = fake_quantize_model(state, ("a",), bits=8)
        twice = fake_quantize_model(once, ("a",), bits=8)
        np.testing.assert_allclose(once["a"], twice["a"])
