"""Cross-method quantizer contract suite.

Every spec in :func:`repro.quant.registry.available_specs` must honor the
same engine-level contract — determinism across runs and worker counts,
dtype/shape-faithful reconstruction, format-v3 archive round-trips,
validation policies for degenerate and non-finite tensors, and the engine's
``on_error`` fault policies.  The suite parametrizes over the registry, so a
method registered tomorrow is held to the contract automatically (and a
method that silently breaks it cannot hide behind its own unit tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model_quantizer import select_parameters
from repro.core.serialization import (
    load_quantized_model,
    save_quantized_model,
    verify_archive,
)
from repro.errors import DegenerateTensorError, NonFiniteWeightError
from repro.models.zoo import build_model
from repro.quant.registry import available_specs, build_quantizer
from repro.testing.faults import InjectedFault, RaiseOnLayer
from tests.conftest import MICRO_CONFIG

SPECS = available_specs()


@pytest.fixture(scope="module")
def model():
    return build_model(MICRO_CONFIG, task="encoder", rng=0)


@pytest.fixture(scope="module")
def state(model):
    return model.state_dict()


@pytest.fixture(scope="module")
def selection(model):
    return select_parameters(model)


def quantize_spec(spec, state, selection, **kwargs):
    return build_quantizer(spec).quantize(
        state, selection.fc_names, selection.embedding_names, **kwargs
    )


def archive_bytes(quantized, path):
    save_quantized_model(quantized, path)
    return path.read_bytes()


class TestRegistryBreadth:
    def test_at_least_eight_specs(self):
        assert len(SPECS) >= 8

    def test_specs_are_unique_and_parse(self):
        assert len(set(SPECS)) == len(SPECS)
        for spec in SPECS:
            quantizer = build_quantizer(spec)
            assert isinstance(quantizer.name, str) and quantizer.name
            assert isinstance(quantizer.requires_finetuning, bool)


@pytest.mark.parametrize("spec", SPECS)
class TestDeterminism:
    def test_archives_identical_across_runs_and_worker_counts(
        self, spec, state, selection, tmp_path
    ):
        first = archive_bytes(
            quantize_spec(spec, state, selection, workers=1), tmp_path / "a.npz"
        )
        again = archive_bytes(
            quantize_spec(spec, state, selection, workers=1), tmp_path / "b.npz"
        )
        fanned = archive_bytes(
            quantize_spec(spec, state, selection, workers=3), tmp_path / "c.npz"
        )
        assert first == again, f"{spec} is not run-to-run deterministic"
        assert first == fanned, f"{spec} archive depends on the worker count"


@pytest.mark.parametrize("spec", SPECS)
class TestReconstruction:
    def test_state_dict_dtype_and_shape_fidelity(self, spec, state, selection):
        quantized = quantize_spec(spec, state, selection)
        for dtype in (np.float32, np.float64):
            reconstructed = quantized.state_dict(dtype)
            assert set(reconstructed) == set(state)
            for name, value in reconstructed.items():
                assert value.dtype == np.dtype(dtype), (spec, name)
                assert value.shape == np.asarray(state[name]).shape, (spec, name)

    def test_every_requested_tensor_is_quantized(self, spec, state, selection):
        quantized = quantize_spec(spec, state, selection)
        expected = set(selection.fc_names) | set(selection.embedding_names)
        assert set(quantized.quantized) == expected
        assert not quantized.report.failures

    def test_dequantize_error_is_bounded(self, spec, state, selection):
        quantized = quantize_spec(spec, state, selection)
        for name, tensor in quantized.quantized.items():
            diff = np.asarray(state[name], np.float64) - tensor.dequantize(np.float64)
            assert np.isfinite(diff).all(), (spec, name)
            # Micro-model weights have std ~0.06; anything past this bound
            # means the method reconstructed garbage, not a coarse grid.
            assert float(np.abs(diff).max()) < 0.25, (spec, name)


@pytest.mark.parametrize("spec", SPECS)
class TestSerialization:
    def test_round_trip_through_format_v3(self, spec, state, selection, tmp_path):
        quantized = quantize_spec(spec, state, selection)
        path = tmp_path / "model.npz"
        save_quantized_model(quantized, path)

        check = verify_archive(path)
        assert check.ok and check.version == 3, (spec, check)

        eager = load_quantized_model(path)
        lazy = load_quantized_model(path, lazy=True)
        want = quantized.state_dict(np.float32)
        for loaded in (eager, lazy):
            got = loaded.state_dict(np.float32)
            assert set(got) == set(want)
            for name in want:
                np.testing.assert_array_equal(got[name], want[name], err_msg=f"{spec}:{name}")


@pytest.mark.parametrize("spec", SPECS)
class TestValidationPolicies:
    def test_non_finite_strict_raises(self, spec, state, selection):
        poisoned = dict(state)
        target = selection.fc_names[0]
        bad = np.array(poisoned[target], dtype=np.float64)
        bad.flat[0] = np.nan
        poisoned[target] = bad
        with pytest.raises(NonFiniteWeightError):
            quantize_spec(spec, poisoned, selection, validation="strict")

    def test_non_finite_repair_reconstructs_finite(self, spec, state, selection):
        poisoned = dict(state)
        target = selection.fc_names[0]
        bad = np.array(poisoned[target], dtype=np.float64)
        bad.flat[:3] = (np.nan, np.inf, -np.inf)
        poisoned[target] = bad
        quantized = quantize_spec(spec, poisoned, selection, validation="repair")
        reconstructed = quantized.quantized[target].dequantize(np.float64)
        assert np.isfinite(reconstructed).all()

    def test_degenerate_strict_raises(self, spec, state, selection):
        poisoned = dict(state)
        target = selection.fc_names[0]
        poisoned[target] = np.full_like(
            np.asarray(poisoned[target], dtype=np.float64), 0.125
        )
        with pytest.raises(DegenerateTensorError):
            quantize_spec(spec, poisoned, selection, validation="strict")

    def test_degenerate_repair_is_exact(self, spec, state, selection):
        poisoned = dict(state)
        target = selection.fc_names[0]
        poisoned[target] = np.full_like(
            np.asarray(poisoned[target], dtype=np.float64), 0.125
        )
        quantized = quantize_spec(spec, poisoned, selection, validation="repair")
        np.testing.assert_array_equal(
            quantized.quantized[target].dequantize(np.float64), poisoned[target]
        )


@pytest.mark.parametrize("spec", SPECS)
class TestFaultPolicies:
    def test_on_error_fail_propagates_injected_fault(self, spec, state, selection):
        target = selection.fc_names[-1]
        with pytest.raises(InjectedFault):
            quantize_spec(
                spec, state, selection,
                on_error="fail", fault_injector=RaiseOnLayer(target),
            )

    def test_on_error_fp32_fallback_degrades_one_layer(self, spec, state, selection):
        target = selection.fc_names[-1]
        quantized = quantize_spec(
            spec, state, selection,
            on_error="fp32-fallback", fault_injector=RaiseOnLayer(target),
        )
        assert target not in quantized.quantized
        assert target in quantized.fp32
        np.testing.assert_array_equal(
            quantized.fp32[target], np.asarray(state[target])
        )
        failures = {f.name: f for f in quantized.report.failures}
        assert failures[target].action == "fp32-fallback"

    def test_on_error_skip_drops_only_the_failing_layer(self, spec, state, selection):
        target = selection.fc_names[-1]
        quantized = quantize_spec(
            spec, state, selection,
            on_error="skip", fault_injector=RaiseOnLayer(target),
        )
        assert target not in quantized.quantized
        assert target not in quantized.fp32
        survivors = set(selection.fc_names) - {target}
        assert survivors <= set(quantized.quantized)
        failures = {f.name: f for f in quantized.report.failures}
        assert failures[target].action == "skip" and failures[target].dropped


@pytest.mark.parametrize("spec", SPECS)
class TestCompressContract:
    def test_compress_reports_its_method(self, spec, state, selection):
        quantizer = build_quantizer(spec)
        compressed = quantizer.compress(
            state, selection.fc_names, selection.embedding_names
        )
        assert compressed.method == quantizer.name
        covered = set(selection.fc_names) | set(selection.embedding_names)
        assert covered <= set(compressed.tensors)
        assert compressed.compression_ratio() > 0
        reconstructed = compressed.state_dict()
        assert set(reconstructed) == set(state)
