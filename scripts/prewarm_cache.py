"""Fine-tune and cache every (model, task) pair the benchmarks need."""
import time
from repro.experiments.accuracy import get_finetuned

PAIRS = [
    ("bert-base", "mnli"),
    ("bert-base", "stsb"),
    ("bert-large", "squad"),
    ("distilbert", "mnli"),
    ("roberta-base", "mnli"),
    ("roberta-large", "mnli"),
]

if __name__ == "__main__":
    for model, task in PAIRS:
        t0 = time.time()
        finetuned = get_finetuned(model, task)
        print(
            f"{model:15s} {task:6s} baseline={finetuned.baseline_score:.4f} "
            f"({time.time() - t0:.0f}s)",
            flush=True,
        )
