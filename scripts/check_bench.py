#!/usr/bin/env python
"""Schema-check a BENCH_*.json record and enforce its perf gate.

Usage::

    python scripts/check_bench.py benchmarks/results/BENCH_kernels.json
    python scripts/check_bench.py benchmarks/results/BENCH_serve.json

The record's ``schema`` field selects the contract:

* ``bench-kernels/v1`` — every measurement present, positive and finite;
  fails (exit 1) if the lookup kernel falls below 1.0x the
  dequantize-then-matmul baseline at batch 1, the paper's latency scenario.
  Batch-8 throughput is recorded but not gated: with a prepared decode
  amortized over many rows, BLAS on the dequantized matrix wins, and the
  record documents that crossover honestly.
* ``bench-serve/v1`` — serving-layer numbers; fails if the micro-batcher
  never fused concurrent requests (max batch size 1) or fused beyond its
  configured bound.  Absolute request rates are recorded, not gated —
  they are hardware-dependent; fusion is a correctness property.
* ``bench-jobs/v1`` — thread pool vs supervised process fleet; always
  fails unless the two backends produced byte-identical quantized tensors
  (crash isolation must be free in output).  The
  ``speedup_process_vs_thread >= 1.0`` gate applies only to non-smoke
  records from multi-core hosts — on one CPU the fleet's fork+IPC
  overhead is unamortizable and the honest number is below 1.
* ``bench-methods/v1`` — the method zoo: one entry per registered spec
  (at least 8).  Fails if any spec's archives differ across worker counts,
  if a timing/ratio is non-positive or non-finite, or if the full-scale
  compression ordering flips (GOBO 3-bit > Q-BERT 3-bit > Q8BERT).
  Measured tiny-model CRs are recorded but not gated (centroid-table
  overhead dominates tiny tensors).
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

SCHEMA = "bench-kernels/v1"
SERVE_SCHEMA = "bench-serve/v1"
JOBS_SCHEMA = "bench-jobs/v1"
METHODS_SCHEMA = "bench-methods/v1"
GATE_SPEEDUP_BATCH1 = 1.0
GATE_SPEEDUP_FLEET = 1.0

REQUIRED_MEASUREMENTS = (
    "lookup_matmul_batch1_seconds",
    "lookup_matmul_batch8_seconds",
    "dequantize_matmul_batch1_seconds",
    "dequantize_matmul_batch8_seconds",
    "speedup_batch1",
    "speedup_batch8",
    "unpack_seconds",
    "unpack_values_per_second",
)
REQUIRED_LAZY = (
    "archive_bytes",
    "lazy_load_seconds",
    "eager_load_seconds",
    "bytes_touched_at_load",
    "bytes_touched_first_layer",
)
REQUIRED_CONFIG = ("shape", "bits", "batch_sizes", "repeats")

REQUIRED_SERVE_MEASUREMENTS = (
    "sequential_request_seconds",
    "concurrent_wall_seconds",
    "concurrent_requests_per_second",
    "mean_batch_size",
    "max_batch_size",
    "reload_seconds",
)
REQUIRED_SERVE_CONFIG = (
    "model", "clients", "requests_per_client", "batch_window_ms", "max_batch",
)

REQUIRED_JOBS_MEASUREMENTS = (
    "thread_seconds",
    "process_seconds",
    "speedup_process_vs_thread",
    "thread_layers_per_second",
    "process_layers_per_second",
)
REQUIRED_JOBS_CONFIG = ("layers", "shape", "workers", "repeats", "cpu_count")

REQUIRED_METHODS_SPEC_MEASUREMENTS = (
    "seconds",
    "compression_ratio",
    "full_scale_compression_ratio",
    "rmse",
)
REQUIRED_METHODS_CONFIG = (
    "model", "full_scale_model", "specs", "workers", "repeats", "cpu_count",
)
MIN_METHOD_SPECS = 8


def fail(message: str) -> None:
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def positive_number(record: dict, key: str, context: str) -> float:
    value = record.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{context}.{key} missing or not a number: {value!r}")
    if not math.isfinite(value) or value <= 0:
        fail(f"{context}.{key} must be finite and positive, got {value!r}")
    return float(value)


def check(path: Path) -> int:
    try:
        record = json.loads(path.read_text())
    except FileNotFoundError:
        fail(f"no such file: {path}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")

    schema = record.get("schema")
    if schema == SERVE_SCHEMA:
        return check_serve(record, path)
    if schema == JOBS_SCHEMA:
        return check_jobs(record, path)
    if schema == METHODS_SCHEMA:
        return check_methods(record, path)
    if schema != SCHEMA:
        fail(f"schema mismatch: expected {SCHEMA!r}, {SERVE_SCHEMA!r}, "
             f"{JOBS_SCHEMA!r} or {METHODS_SCHEMA!r}, got {schema!r}")
    if not isinstance(record.get("smoke"), bool):
        fail("missing boolean 'smoke' field")
    config = record.get("config")
    if not isinstance(config, dict):
        fail("missing 'config' object")
    for key in REQUIRED_CONFIG:
        if key not in config:
            fail(f"config.{key} missing")

    measurements = record.get("measurements")
    if not isinstance(measurements, dict):
        fail("missing 'measurements' object")
    for key in REQUIRED_MEASUREMENTS:
        positive_number(measurements, key, "measurements")
    lazy = measurements.get("lazy_load")
    if not isinstance(lazy, dict):
        fail("measurements.lazy_load missing")
    for key in REQUIRED_LAZY:
        positive_number(lazy, key, "measurements.lazy_load")

    if lazy["bytes_touched_at_load"] >= lazy["archive_bytes"]:
        fail(
            "lazy load touched the whole archive "
            f"({lazy['bytes_touched_at_load']} of {lazy['archive_bytes']} bytes)"
        )

    speedup = measurements["speedup_batch1"]
    if speedup < GATE_SPEEDUP_BATCH1:
        fail(
            f"lookup kernel below {GATE_SPEEDUP_BATCH1:.1f}x the dequantize "
            f"baseline at batch 1: {speedup:.3f}x"
        )
    shape = "x".join(str(d) for d in config["shape"])
    print(
        f"check_bench: OK: {path} ({shape}, smoke={record['smoke']}) — "
        f"batch-1 speedup {speedup:.2f}x, batch-8 {measurements['speedup_batch8']:.2f}x, "
        f"unpack {measurements['unpack_values_per_second'] / 1e6:.0f}M values/s, "
        f"lazy load touched {lazy['bytes_touched_at_load']} of "
        f"{lazy['archive_bytes']} archive bytes"
    )
    return 0


def check_serve(record: dict, path: Path) -> int:
    if not isinstance(record.get("smoke"), bool):
        fail("missing boolean 'smoke' field")
    config = record.get("config")
    if not isinstance(config, dict):
        fail("missing 'config' object")
    for key in REQUIRED_SERVE_CONFIG:
        if key not in config:
            fail(f"config.{key} missing")
    measurements = record.get("measurements")
    if not isinstance(measurements, dict):
        fail("missing 'measurements' object")
    for key in REQUIRED_SERVE_MEASUREMENTS:
        positive_number(measurements, key, "measurements")

    mean_batch = measurements["mean_batch_size"]
    max_batch = measurements["max_batch_size"]
    if max_batch <= 1:
        fail("micro-batcher never fused concurrent requests "
             f"(max batch size {max_batch:g})")
    if max_batch > config["max_batch"]:
        fail(f"recorded max batch {max_batch:g} exceeds the configured "
             f"bound {config['max_batch']}")
    if mean_batch > max_batch:
        fail(f"mean batch {mean_batch:g} exceeds max batch {max_batch:g}")
    print(
        f"check_bench: OK: {path} ({config['model']}, smoke={record['smoke']}) — "
        f"{measurements['concurrent_requests_per_second']:.0f} req/s across "
        f"{config['clients']} clients, mean batch {mean_batch:.2f} "
        f"(max {max_batch:g}), sequential "
        f"{measurements['sequential_request_seconds'] * 1000:.1f}ms, reload "
        f"{measurements['reload_seconds'] * 1000:.0f}ms"
    )
    return 0


def check_jobs(record: dict, path: Path) -> int:
    if not isinstance(record.get("smoke"), bool):
        fail("missing boolean 'smoke' field")
    config = record.get("config")
    if not isinstance(config, dict):
        fail("missing 'config' object")
    for key in REQUIRED_JOBS_CONFIG:
        if key not in config:
            fail(f"config.{key} missing")
    measurements = record.get("measurements")
    if not isinstance(measurements, dict):
        fail("missing 'measurements' object")
    for key in REQUIRED_JOBS_MEASUREMENTS:
        positive_number(measurements, key, "measurements")

    if measurements.get("byte_identical") is not True:
        fail("process backend was not byte-identical to the thread backend")

    speedup = measurements["speedup_process_vs_thread"]
    cpus = config["cpu_count"]
    gated = not record["smoke"] and isinstance(cpus, int) and cpus >= 2
    if gated and speedup < GATE_SPEEDUP_FLEET:
        fail(
            f"process fleet below {GATE_SPEEDUP_FLEET:.1f}x the thread pool "
            f"at {config['workers']} workers on {cpus} CPUs: {speedup:.3f}x"
        )
    shape = "x".join(str(d) for d in config["shape"])
    note = "gated" if gated else (
        f"gate waived: {'smoke record' if record['smoke'] else 'single CPU'}"
    )
    print(
        f"check_bench: OK: {path} ({config['layers']}x{shape}, "
        f"smoke={record['smoke']}) — thread "
        f"{measurements['thread_seconds'] * 1000:.0f}ms, process "
        f"{measurements['process_seconds'] * 1000:.0f}ms "
        f"({speedup:.2f}x, {note}), byte-identical"
    )
    return 0


def check_methods(record: dict, path: Path) -> int:
    if not isinstance(record.get("smoke"), bool):
        fail("missing boolean 'smoke' field")
    config = record.get("config")
    if not isinstance(config, dict):
        fail("missing 'config' object")
    for key in REQUIRED_METHODS_CONFIG:
        if key not in config:
            fail(f"config.{key} missing")
    measurements = record.get("measurements")
    if not isinstance(measurements, dict):
        fail("missing 'measurements' object")
    specs = measurements.get("specs")
    if not isinstance(specs, dict):
        fail("measurements.specs missing")
    if len(specs) < MIN_METHOD_SPECS:
        fail(f"only {len(specs)} method specs recorded; the zoo needs at "
             f"least {MIN_METHOD_SPECS}")
    if set(specs) != set(config["specs"]):
        fail("measurements.specs does not match config.specs")
    for spec, row in specs.items():
        if not isinstance(row, dict):
            fail(f"measurements.specs.{spec} is not an object")
        for key in REQUIRED_METHODS_SPEC_MEASUREMENTS:
            if key == "rmse":
                value = row.get(key)
                ok = (isinstance(value, (int, float))
                      and not isinstance(value, bool)
                      and math.isfinite(value) and value >= 0)
                if not ok:
                    fail(f"measurements.specs.{spec}.rmse must be finite and "
                         f"non-negative, got {value!r}")
            else:
                positive_number(row, key, f"measurements.specs.{spec}")
        if row.get("byte_identical") is not True:
            fail(f"{spec} archives were not byte-identical across worker counts")

    def full_scale(spec: str) -> float:
        if spec not in specs:
            fail(f"ordering gate needs spec {spec!r} in the record")
        return specs[spec]["full_scale_compression_ratio"]

    if not full_scale("gobo-3bit") > full_scale("qbert-3bit") > full_scale("q8bert"):
        fail("full-scale compression ordering flipped: expected "
             "gobo-3bit > qbert-3bit > q8bert, got "
             f"{full_scale('gobo-3bit'):.2f} / {full_scale('qbert-3bit'):.2f} "
             f"/ {full_scale('q8bert'):.2f}")
    slowest = max(specs, key=lambda spec: specs[spec]["seconds"])
    print(
        f"check_bench: OK: {path} ({config['model']}, smoke={record['smoke']}) — "
        f"{len(specs)} specs byte-identical across workers {config['workers']}, "
        f"full-scale CR {full_scale('gobo-3bit'):.2f}x (gobo-3bit) > "
        f"{full_scale('qbert-3bit'):.2f}x (qbert-3bit) > "
        f"{full_scale('q8bert'):.2f}x (q8bert), slowest {slowest} "
        f"{specs[slowest]['seconds'] * 1000:.0f}ms"
    )
    return 0


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return check(Path(argv[1]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
