#!/usr/bin/env python
"""Regenerate the golden archive fixtures under tests/data/.

The writer is byte-deterministic, so rerunning this script produces files
identical to the checked-in ones unless the format itself changed — and
``tests/core/test_golden_archives.py`` fails loudly if it did.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.testing.golden import (  # noqa: E402
    GOLDEN_VERSIONS,
    METHOD_GOLDENS,
    write_golden,
    write_method_golden,
)

DATA_DIR = Path(__file__).resolve().parents[1] / "tests" / "data"


def main() -> int:
    for version in GOLDEN_VERSIONS:
        path = write_golden(DATA_DIR, version)
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    for method in METHOD_GOLDENS:
        path = write_method_golden(DATA_DIR, method)
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
