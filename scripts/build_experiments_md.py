"""Assemble EXPERIMENTS.md from the regenerated benchmark artifacts.

Run after ``pytest benchmarks/ --benchmark-only``:

    python scripts/build_experiments_md.py
"""

from __future__ import annotations

from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
RESULTS = REPO / "benchmarks" / "results"

# (artifact file, section title, what the paper reports, commentary on match)
SECTIONS = [
    (
        "table1_architecture.txt",
        "Table I — BERT architecture",
        "BERT-Base: 12 layers, 4x 768x768 attention FCs, 768x3072/3072x768 "
        "intermediate/output, 73 FC layers, 110M params; BERT-Large: 24 layers, "
        "1024-wide, 145 FC layers, 340M params.",
        "Exact reproduction — the configs encode the paper's dimensions.",
    ),
    (
        "table2_footprint.txt",
        "Table II — memory footprint",
        "Embeddings 89.42/119.22 MB, weights 326.26 MB/1.12 GB, 3/4 KB input "
        "per word, 12/16 KB largest activations per word, 1.5/2 MB activations "
        "at sequence length 128.",
        "Matches to the second decimal; 'weights' counts FC weight matrices "
        "(no biases/LayerNorm), 'embedding tables' the word table, exactly as "
        "the paper's numbers imply.",
    ),
    (
        "table3_mnli_methods.txt",
        "Table III — quantization methods on MNLI (BERT-Base)",
        "Baseline 84.45%; Q8BERT -0.70% at 4x; Q-BERT 3/4-bit -1.04%/-0.56% at "
        "7.81x/6.52x; GOBO 3/4-bit -0.69%/0.00% at 9.83x/7.92x; only GOBO "
        "needs no fine-tuning.",
        "Compression ratios land within ~0.1x of the paper at the real "
        "BERT-Base dimensions (GOBO 9.7x/7.8x, Q-BERT 7.81x/6.52x, Q8BERT "
        "4.00x). Accuracy shape holds: every method within a few points of "
        "its baseline, GOBO 4-bit (near-)lossless, GOBO compresses hardest "
        "while being the only method that skips fine-tuning. Absolute "
        "accuracies differ (tiny models on synthetic tasks score near 100%).",
    ),
    (
        "table4_mnli_bert_base.txt",
        "Table IV (a) — centroid policies, MNLI / BERT-Base",
        "At 3 bits: GOBO -0.69%, K-Means -1.36%, Linear -51.97%. GOBO is "
        "lossless from 4 bits, K-Means from 5, Linear from 6. 2 bits is "
        "catastrophic for all (13-53 points).",
        "Bit-width trend reproduces (2-bit catastrophic, 3-bit small loss, "
        "4+ bits lossless for GOBO; GOBO recovers baseline with no more bits "
        "than K-Means). The linear policy's *accuracy* does not collapse at "
        "tiny scale — see 'deviations' below and Table IV (d).",
    ),
    (
        "table4_stsb_bert_base.txt",
        "Table IV (b) — centroid policies, STS-B / BERT-Base",
        "GOBO lossless at 3 bits already (Spearman 88.33); K-Means needs 4 "
        "bits, Linear 5.",
        "Graded degradation with monotone recovery reproduces; the rank "
        "metric tolerates quantization better than MNLI accuracy at 4+ bits.",
    ),
    (
        "table4_squad_bert_large.txt",
        "Table IV (c) — centroid policies, SQuAD / BERT-Large",
        "GOBO 3-bit -0.91% F1, 4-bit lossless (91.95); Linear needs 7 bits.",
        "Same shape: small 3-bit loss, 4-bit (near-)lossless, 2-bit heavy "
        "loss.",
    ),
    (
        "table4_fidelity.txt",
        "Table IV (d) — the mechanism: G-group reconstruction fidelity",
        "The paper credits GOBO's accuracy edge to lower L1 between weights "
        "and centroids (Fig. 2 annotation: GOBO 0.69% vs K-Means 1.36% "
        "inference error at converged L1).",
        "On full-scale Gaussian weights the ordering is unambiguous at every "
        "bit width: GOBO's mean |error| <= K-Means' and ~2x better than "
        "Linear's, with far fewer iterations. This is the weight-space "
        "counterpart of the paper's accuracy columns, and it is exact here.",
    ),
    (
        "table5_distilbert.txt",
        "Table V — DistilBERT / MNLI",
        "GOBO 3-bit -0.68%, 4-bit lossless; K-Means needs one more bit. "
        "DistilBERT+GOBO is ~20x smaller than FP32 BERT-Base.",
        "Shape holds (3-bit small loss, 4-bit lossless); the 20x composition "
        "is verified at real scale in the benchmark's second test.",
    ),
    (
        "table6_roberta_base.txt",
        "Table VI (a) — RoBERTa / MNLI",
        "Uniform 3-bit loses 7.92%; the mixed 3b/4b policy (Value + "
        "Intermediate of the first 6 encoders at 4 bits) recovers to -1.41%; "
        "uniform 4-bit -0.30%; 5-bit lossless.",
        "The mixed policy lands between uniform 3-bit and uniform 4-bit, "
        "recovering most of the 4-bit accuracy — the paper's recipe works.",
    ),
    (
        "table6_roberta_large.txt",
        "Table VI (b) — RoBERTa-Large / MNLI",
        "Mixed 3b/4b (first 14 of 24 encoders) -0.87%; 4-bit -0.32%; 5-bit "
        "lossless.",
        "Same shape as RoBERTa-Base, with the deeper model slightly less "
        "sensitive, as the paper observes.",
    ),
    (
        "table7_embeddings.txt",
        "Table VII — embedding-table compression",
        "3-bit CR 10.10-10.66x, 4-bit CR 7.69-8.00x across the five models "
        "(e.g. BERT-Base 89.42 -> 8.63 MB at 3 bits).",
        "Byte-accurate match: ~10.45x and ~7.88x for every model, sizes "
        "within ~0.2 MB of the paper's.",
    ),
    (
        "fig1b_distributions.txt",
        "Figure 1b — per-layer weight distributions",
        "Every layer's weights closely follow a Gaussian; parameters vary by "
        "layer.",
        "Gaussian-overlap > 0.93 for every sampled layer; per-layer stds "
        "vary by design, mirroring the figure.",
    ),
    (
        "fig1c_scatter.txt",
        "Figure 1c — weight scatter with outlier fringe",
        "A tiny fraction of weights sits on the fringes of the Gaussian, "
        "with magnitude considerably larger than the rest.",
        "The fringe is strictly outside the bulk and ~0.1% of the tensor.",
    ),
    (
        "fig2_convergence.txt",
        "Figure 2 — GOBO vs K-Means convergence",
        "GOBO reaches its L1 minimum in ~7 iterations, ~9x faster than "
        "K-Means' assignment convergence, with lower final L1 and lower "
        "inference error (0.69% vs 1.36%).",
        "Reproduced: GOBO converges at iteration 7 (the paper's number), "
        "~16x faster than K-Means' fixpoint, with lower final L1. The "
        "inference-error annotations come from the fine-tuned MNLI model; "
        "their ordering fluctuates at tiny scale (see 'deviations'), while "
        "the L1 ordering — the figure's mechanism — is deterministic.",
    ),
    (
        "fig3_outlier_census.txt",
        "Figure 3 — per-layer outlier percentage",
        "All but the last layer < 0.4%, last layer < 1%, model average ~0.1% "
        "at log-probability threshold -4.",
        "Reproduced across all 73 BERT-Base FC layers, including the "
        "last-layer bump.",
    ),
    (
        "fig3_compression_curve.txt",
        "Figure 3 (left) — compression ratio vs dictionary group size",
        "Ratios rise with weights per dictionary and asymptote to 32/bits "
        "(16x, 10.67x, 8x, 6.4x, 5.33x).",
        "Exact: the curves asymptote to the paper's values; tiny groups are "
        "dominated by the FP32 reconstruction table — the argument for "
        "GOBO's one-table-per-layer design over Q-BERT's 128 groups.",
    ),
    (
        "fig4_embedding_accuracy.txt",
        "Figure 4 — embedding-table quantization",
        "Quantizing only the embeddings to 3/4 bits maintains (sometimes "
        "improves) accuracy; full GOBO with 4-bit embeddings maintains it, "
        "3-bit embeddings cost ~0.2%.",
        "4-bit embedding-only quantization stays within ~1% of baseline for "
        "all five models, and 4-bit never trails 3-bit. Exception worth "
        "noting: tiny-distilbert (2 encoder layers) loses ~20% under *3-bit* "
        "embeddings — with half the depth there is less downstream "
        "redundancy to absorb embedding error, an amplified version of why "
        "the paper itself defaults its headline configuration to 4-bit "
        "embeddings.",
    ),
    (
        "ablation_outlier_threshold.txt",
        "Ablation — outlier threshold",
        "The paper fixes the log-probability threshold at -4 ('sufficient "
        "for maintaining accuracy').",
        "Stricter thresholds admit more outliers (more FP32 storage); -4 "
        "keeps <0.5% outliers while shrinking G-group error vs -5/-6.",
    ),
    (
        "ablation_init_scheme.txt",
        "Ablation — centroid initialization",
        "GOBO initializes centroids by equal-population binning (nonlinear, "
        "distribution-aware) rather than linearly (as Deep Compression).",
        "Equal-population init starts near the optimum: no worse final L1, "
        "fewer or equal iterations than a linear start.",
    ),
    (
        "ablation_stopping_rule.txt",
        "Ablation — stopping rule",
        "GOBO monitors L1 and stops at its minimum; K-Means iterates to an "
        "assignment fixpoint (9x more iterations, worse L1).",
        "Reproduced on the same trajectory: the L1 stop is >4x earlier and "
        "never worse in L1.",
    ),
    (
        "ablation_keep_outliers.txt",
        "Ablation — keeping outliers FP32",
        "'Preserving outliers proves essential for maintaining accuracy.'",
        "Clamping the ~0.1% fringe into the shared dictionary measurably "
        "inflates total reconstruction error.",
    ),
    (
        "sensitivity_scan.txt",
        "Extension — per-layer sensitivity scan",
        "Section V's method: the 'Value and Intermediate layers of the first "
        "6 encoders are sensitive' finding behind the mixed 3b/4b policy.",
        "The tooling reproduces the analysis: quantize one layer at a time "
        "at 2 bits, rank by accuracy drop, and summarize which components "
        "dominate the sensitive set.",
    ),
    (
        "latency_model.txt",
        "Extension — roofline inference latency",
        "(Title claim: 'low latency'.) The MICRO version pairs GOBO with "
        "hardware; the arXiv text motivates via off-chip traffic.",
        "On a memory-bound edge machine at short sequence lengths the "
        "latency win equals the full ~10.4x traffic cut; at seq 128 "
        "compression flips layers to compute-bound and the roofline caps "
        "the speedup — an honest boundary the model makes explicit.",
    ),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated by
`pytest benchmarks/ --benchmark-only` (this file is assembled from the
artifacts in `benchmarks/results/` by `scripts/build_experiments_md.py`).

How to read the comparisons:

* **Size/compression columns** are computed at the *real* model dimensions
  (BERT-Base = 12x768x3072 etc.) and are directly comparable with the paper —
  they match to within rounding.
* **Accuracy columns** come from tiny BERT-family models fine-tuned on
  synthetic tasks (no pretrained checkpoints offline; DESIGN.md section 2
  maps every substitution). Absolute scores are therefore not comparable —
  the tiny models solve their synthetic tasks at 95-100% — but the *shape*
  the paper reports is what each benchmark asserts: who wins, what breaks at
  2 bits, where losslessness starts.

## Known deviations

1. **Linear quantization does not collapse accuracy at tiny scale.** In the
   paper, 3-bit linear quantization destroys MNLI (32.48%). Our tiny
   from-scratch models keep their function in a sparse set of large weights,
   which uniform bins happen to serve well (DESIGN.md section 7 explains the
   regime difference). The mechanism behind the paper's column — GOBO's
   centroids reconstruct Gaussian weights with ~2x lower L1 than linear ones
   — is reproduced exactly in Table IV (d) below, on full-scale weights.
2. **Absolute accuracies/baselines differ** (synthetic tasks; see above).
3. **BERT-Large "weights" is 1156 MB here vs the paper's 1.12 GB** — the
   paper rounds 1,212,153,856 bytes to GB; both describe the same census.
4. **Fine-tuning-time claims** (GOBO minutes vs days of QAT) are reproduced
   qualitatively: the kernel benchmarks time full-layer quantization at
   ~0.2 s per 768x768 layer on one CPU core (~15 s for all of BERT-Base),
   while Q8BERT-style QAT multiplies full training time.

---
"""


def main() -> None:
    parts = [HEADER]
    missing = []
    for filename, title, paper, verdict in SECTIONS:
        path = RESULTS / filename
        parts.append(f"## {title}\n")
        parts.append(f"**Paper:** {paper}\n")
        parts.append(f"**Reproduction:** {verdict}\n")
        if path.exists():
            body = path.read_text().rstrip()
            parts.append("```\n" + body + "\n```\n")
        else:
            missing.append(filename)
            parts.append("_(artifact not yet generated — run the benchmarks)_\n")
    (REPO / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote EXPERIMENTS.md ({len(SECTIONS)} sections, {len(missing)} missing)")
    if missing:
        print("missing artifacts:", ", ".join(missing))


if __name__ == "__main__":
    main()
