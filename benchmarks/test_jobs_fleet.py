"""Jobs-engine benchmarks: thread pool vs supervised process fleet.

Measures the cost of crash isolation: the same per-layer jobs through
``backend="thread"`` (shared address space, zero IPC) and
``backend="process"`` (supervised fleet: fork, per-worker pipes, pickled
outcomes, heartbeats).  The numbers answer "what does a SIGKILL-survivable
run cost?" — and the recorded byte-identity flag proves it costs nothing in
output.

``test_record_bench_jobs_json`` writes ``BENCH_jobs.json`` to
``benchmarks/results/`` (own ``perf_counter`` timings, so it records under
``--benchmark-disable``); ``scripts/check_bench.py`` schema-checks it, and
the committed baseline lives at ``benchmarks/BENCH_jobs.json``.

Gating note: the fleet can only out-run the thread pool when there are
cores to spread over *and* per-layer Python time for processes to
parallelize past the GIL.  On a single-CPU host the fixed fork+IPC
overhead is unamortizable, so ``check_bench.py`` enforces the
``speedup_process_vs_thread >= 1.0`` gate only for non-smoke records from
multi-core hosts; everywhere it gates the property that is never
hardware-dependent: ``byte_identical`` must be true.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import _smoke_mode
from repro.core.parallel import LayerJob, quantize_layers
from repro.utils.rng import derive_rng

WORKERS = 4
LAYERS = 8
SIZE = 64 if _smoke_mode() else 256
REPEATS = 2 if _smoke_mode() else 3
FLEET_KW = dict(heartbeat_interval=0.05, heartbeat_timeout=10.0)


@pytest.fixture(scope="module")
def state():
    rng = derive_rng(7, "bench-jobs-fleet")
    return {
        f"layer{i}.weight": rng.normal(0.0, 0.04, size=(SIZE, SIZE))
        for i in range(LAYERS)
    }


@pytest.fixture(scope="module")
def jobs():
    return [LayerJob(f"layer{i}.weight", 3) for i in range(LAYERS)]


def _best_seconds(run, repeats: int = REPEATS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        out = run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, out
    return best, result


def _identical(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(
        a[name].packed_codes == b[name].packed_codes for name in a
    )


def test_bench_thread_backend(benchmark, state, jobs):
    quantized, _, report = benchmark.pedantic(
        lambda: quantize_layers(state, jobs, workers=WORKERS),
        rounds=REPEATS, iterations=1,
    )
    assert report.backend == "thread" and len(quantized) == LAYERS


def test_bench_process_backend(benchmark, state, jobs):
    from repro.jobs.fleet import run_fleet_layers

    quantized, _, report = benchmark.pedantic(
        lambda: run_fleet_layers(state, jobs, workers=WORKERS, **FLEET_KW),
        rounds=REPEATS, iterations=1,
    )
    assert report.backend == "process" and report.worker_deaths == 0


def test_record_bench_jobs_json(results_dir, state, jobs):
    """Record the BENCH_jobs.json baseline (see module docstring)."""
    from repro.jobs.fleet import run_fleet_layers

    # Warm both paths once (imports, allocator) before timing.
    quantize_layers(state, jobs, workers=WORKERS)

    thread_seconds, thread_out = _best_seconds(
        lambda: quantize_layers(state, jobs, workers=WORKERS)
    )
    process_seconds, process_out = _best_seconds(
        lambda: run_fleet_layers(state, jobs, workers=WORKERS, **FLEET_KW)
    )
    identical = _identical(thread_out[0], process_out[0])

    measurements = {
        "thread_seconds": thread_seconds,
        "process_seconds": process_seconds,
        "speedup_process_vs_thread": thread_seconds / process_seconds,
        "thread_layers_per_second": LAYERS / thread_seconds,
        "process_layers_per_second": LAYERS / process_seconds,
        "byte_identical": identical,
    }
    record = {
        "schema": "bench-jobs/v1",
        "smoke": _smoke_mode(),
        "config": {
            "layers": LAYERS,
            "shape": [SIZE, SIZE],
            "workers": WORKERS,
            "repeats": REPEATS,
            "cpu_count": os.cpu_count() or 1,
        },
        "measurements": measurements,
    }
    out = results_dir / "BENCH_jobs.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(
        f"\n[written to benchmarks/results/BENCH_jobs.json] "
        f"thread {thread_seconds * 1000:.0f}ms, "
        f"process {process_seconds * 1000:.0f}ms "
        f"({measurements['speedup_process_vs_thread']:.2f}x), "
        f"identical={identical}"
    )

    # The hardware-independent gate: crash isolation must be free in output.
    assert identical, "process backend produced different quantized bytes"


def test_bench_jobs_json_is_fresh(results_dir):
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("ordering not guaranteed under xdist")
    path = results_dir / "BENCH_jobs.json"
    assert path.exists(), "test_record_bench_jobs_json did not run first"
    record = json.loads(path.read_text())
    assert record["schema"] == "bench-jobs/v1"
