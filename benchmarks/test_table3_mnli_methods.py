"""Table III: quantization-method comparison on MNLI / BERT-Base.

Accuracy comes from the fine-tuned tiny stand-in (see DESIGN.md); compression
ratios are computed at the real BERT-Base dimensions and should match the
paper's column (4x, ~7.8x, ~6.5x, ~9.8x, ~7.9x).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import table3_method_comparison


def test_table3_method_comparison(benchmark, results_dir):
    result = run_once(benchmark, table3_method_comparison)
    text = result.render()
    emit(results_dir, "table3_mnli_methods.txt", text)

    rows = {row[0] + ":" + str(row[1]): row for row in result.rows}
    ratio = {key: float(row[-1].rstrip("x")) for key, row in rows.items()}

    # Compression-ratio column matches the paper at real scale.
    assert abs(ratio["Q8BERT:8-bit"] - 4.0) < 0.1
    assert abs(ratio["Q-BERT:3-bit"] - 7.81) < 0.4
    assert abs(ratio["Q-BERT:4-bit"] - 6.52) < 0.4
    assert abs(ratio["GOBO:3-bit"] - 9.83) < 0.5
    assert abs(ratio["GOBO:4-bit"] - 7.92) < 0.5
    # GOBO compresses hardest, Q8BERT least — the paper's ordering.
    assert ratio["GOBO:3-bit"] > ratio["Q-BERT:3-bit"] > ratio["Q8BERT:8-bit"]

    # Accuracy: every method stays close to the FP32 baseline (the paper's
    # losses are all under ~1.1 accuracy points).
    def accuracy(key: str) -> float:
        return float(rows[key][3].rstrip("%"))

    baseline = accuracy("Baseline:FP32")
    for key in ("Q8BERT:8-bit", "Q-BERT:3-bit", "Q-BERT:4-bit", "GOBO:3-bit", "GOBO:4-bit"):
        assert baseline - accuracy(key) < 5.0, key
    # GOBO at 4 bits is lossless-or-better.
    assert baseline - accuracy("GOBO:4-bit") <= 0.5
