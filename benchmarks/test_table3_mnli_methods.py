"""Table III: quantization-method comparison on MNLI / BERT-Base.

Accuracy comes from the fine-tuned tiny stand-in (see DESIGN.md); compression
ratios are computed at the real BERT-Base dimensions and should match the
paper's column (4x, ~7.8x, ~6.5x, ~9.8x, ~7.9x).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import table3_method_comparison, table3_method_zoo


def test_table3_method_comparison(benchmark, results_dir):
    result = run_once(benchmark, table3_method_comparison)
    text = result.render()
    emit(results_dir, "table3_mnli_methods.txt", text)

    rows = {row[0] + ":" + str(row[1]): row for row in result.rows}
    ratio = {key: float(row[-1].rstrip("x")) for key, row in rows.items()}

    # Compression-ratio column matches the paper at real scale.
    assert abs(ratio["Q8BERT:8-bit"] - 4.0) < 0.1
    assert abs(ratio["Q-BERT:3-bit"] - 7.81) < 0.4
    assert abs(ratio["Q-BERT:4-bit"] - 6.52) < 0.4
    assert abs(ratio["GOBO:3-bit"] - 9.83) < 0.5
    assert abs(ratio["GOBO:4-bit"] - 7.92) < 0.5
    # GOBO compresses hardest, Q8BERT least — the paper's ordering.
    assert ratio["GOBO:3-bit"] > ratio["Q-BERT:3-bit"] > ratio["Q8BERT:8-bit"]

    # Accuracy: every method stays close to the FP32 baseline (the paper's
    # losses are all under ~1.1 accuracy points).
    def accuracy(key: str) -> float:
        return float(rows[key][3].rstrip("%"))

    baseline = accuracy("Baseline:FP32")
    for key in ("Q8BERT:8-bit", "Q-BERT:3-bit", "Q-BERT:4-bit", "GOBO:3-bit", "GOBO:4-bit"):
        assert baseline - accuracy(key) < 5.0, key
    # GOBO at 4 bits is lossless-or-better.
    assert baseline - accuracy("GOBO:4-bit") <= 0.5


def test_table3_method_zoo(benchmark, results_dir):
    """Every registered spec, end-to-end: accuracy + full-scale CR."""
    from repro.quant.registry import available_specs

    result = run_once(benchmark, table3_method_zoo)
    text = result.render()
    emit(results_dir, "table3_method_zoo.txt", text)

    rows = {row[0]: row for row in result.rows}
    # One row per registered spec, plus the FP32 baseline.
    assert set(rows) == set(available_specs()) | {"Baseline"}
    assert len(available_specs()) >= 8

    ratio = {
        spec: float(rows[spec][-1].rstrip("x")) for spec in available_specs()
    }
    # The paper's full-scale ordering survives the zoo extension.
    assert ratio["gobo-3bit"] > ratio["qbert-3bit"] > ratio["q8bert"]
    # Zero-shot pays for its 8-bit grid; mixed allocation beats its own budget
    # floor (12% budget = 8.33x before embeddings ride along at 4 bits).
    assert ratio["zeroshot"] < ratio["q8bert"] + 0.5
    assert ratio["mixed-12pct"] > 7.0

    def accuracy(spec: str) -> float:
        return float(rows[spec][1].rstrip("%"))

    baseline = accuracy("Baseline")
    for spec in available_specs():
        assert baseline - accuracy(spec) < 6.0, spec
    # The 8-bit zero-shot grid is near-lossless without any calibration.
    assert baseline - accuracy("zeroshot") <= 0.5
