"""Figure 1b/1c: per-layer weight distributions and the outlier fringe."""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig1b_distributions, fig1c_weight_scatter
from repro.utils.tables import format_table


def test_fig1b_layer_distributions(benchmark, results_dir):
    distributions = run_once(
        benchmark,
        lambda: fig1b_distributions("bert-base", layer_indices=(5, 10, 15, 20, 25)),
    )
    rows = [
        [d.layer, f"{d.mean:+.5f}", f"{d.std:.5f}", f"{d.gaussian_overlap:.3f}"]
        for d in distributions
    ]
    text = format_table(
        ["Layer", "Mean", "Std", "Gaussian overlap"],
        rows,
        title="Figure 1b: per-layer weight distributions (BERT-Base scale)",
    )
    emit(results_dir, "fig1b_distributions.txt", text)

    # Every layer closely follows a Gaussian (the paper's observation);
    # parameters vary per layer.
    for dist in distributions:
        assert dist.gaussian_overlap > 0.93
    stds = [d.std for d in distributions]
    assert max(stds) / min(stds) > 1.1


def test_fig1c_weight_scatter(benchmark, results_dir):
    scatter = run_once(
        benchmark, lambda: fig1c_weight_scatter("bert-base", layer_index=10)
    )
    fringe = np.abs(scatter.values[scatter.is_outlier])
    bulk = np.abs(scatter.values[~scatter.is_outlier])
    text = "\n".join(
        [
            f"Figure 1c: weight scatter, layer {scatter.layer}",
            f"sampled points            : {scatter.values.size}",
            f"outliers flagged          : {int(scatter.is_outlier.sum())}"
            f" ({scatter.outlier_fraction * 100:.3f}%)",
            f"outlier magnitude cutoff  : {scatter.magnitude_cutoff:.5f}",
            f"largest bulk |w|          : {bulk.max():.5f}",
            f"smallest outlier |w|      : {fringe.min():.5f}",
        ]
    )
    emit(results_dir, "fig1c_scatter.txt", text)

    # The fringe sits strictly outside the Gaussian bulk.
    assert fringe.min() > bulk.max() * 0.95
    # A tiny fraction of weights, as the paper observes (~0.1%).
    assert scatter.outlier_fraction < 0.01
