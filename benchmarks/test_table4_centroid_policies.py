"""Table IV: centroid-selection policies on MNLI, STS-B (BERT-Base) and
SQuAD (BERT-Large).

Two complementary reproductions (see DESIGN.md section 2):

* **accuracy** on the fine-tuned tiny models — reproduces the bit-width
  trend (2 bits catastrophic, 3 bits small loss, 4+ bits lossless);
* **weight-space fidelity** on full-scale synthetic Gaussian weights —
  reproduces the policy ordering (GOBO <= K-Means << linear in L1), which is
  the mechanism the paper credits for its accuracy ordering.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.fidelity import fidelity_sweep
from repro.experiments.tables import centroid_policy_table
from repro.utils.tables import format_table


def _score(result, bits, policy) -> float:
    for row in result.rows:
        if row[0] == bits and row[1] == policy:
            return float(row[2].rstrip("%"))
    raise KeyError((bits, policy))


def _baseline(result) -> float:
    return float(result.rows[0][2].rstrip("%"))


class TestAccuracyTables:
    def test_mnli_bert_base(self, benchmark, results_dir):
        result = run_once(
            benchmark, lambda: centroid_policy_table("bert-base", "mnli", (2, 3, 4, 5, 6))
        )
        emit(results_dir, "table4_mnli_bert_base.txt", result.render())
        baseline = _baseline(result)
        # 2-bit quantization is catastrophic for every policy (paper: 13-53
        # accuracy points lost); 3-bit GOBO loses little; 4+ bits lossless.
        assert baseline - _score(result, 2, "gobo") > 5.0
        assert baseline - _score(result, 3, "gobo") < 5.0
        assert baseline - _score(result, 4, "gobo") <= 1.0
        assert baseline - _score(result, 5, "gobo") <= 0.5
        # GOBO needs no more bits than K-Means to recover the baseline.
        for bits in (4, 5, 6):
            assert _score(result, bits, "gobo") >= _score(result, bits, "kmeans") - 1.0

    def test_stsb_bert_base(self, benchmark, results_dir):
        result = run_once(
            benchmark, lambda: centroid_policy_table("bert-base", "stsb", (2, 3, 4, 5))
        )
        emit(results_dir, "table4_stsb_bert_base.txt", result.render())
        baseline = _baseline(result)
        # Spearman degrades gracefully: moderate loss at 3 bits, small at 4,
        # and the bit-width trend is monotone.
        assert baseline - _score(result, 3, "gobo") < 8.0
        assert baseline - _score(result, 4, "gobo") < 3.0
        assert _score(result, 2, "gobo") < _score(result, 3, "gobo")

    def test_squad_bert_large(self, benchmark, results_dir):
        result = run_once(
            benchmark, lambda: centroid_policy_table("bert-large", "squad", (2, 3, 4, 5, 6, 7))
        )
        emit(results_dir, "table4_squad_bert_large.txt", result.render())
        baseline = _baseline(result)
        assert baseline - _score(result, 3, "gobo") < 5.0
        assert baseline - _score(result, 4, "gobo") < 2.0
        assert baseline - _score(result, 2, "gobo") > baseline - _score(result, 3, "gobo")


class TestFidelityOrdering:
    def test_policy_ordering_at_full_scale(self, benchmark, results_dir):
        results = run_once(
            benchmark,
            lambda: fidelity_sweep(bits_list=(2, 3, 4, 5), layer_shape=(768, 768)),
        )
        rows = [
            [r.bits, r.policy, f"{r.mean_abs_error:.6f}", f"{r.rmse:.6f}", r.iterations]
            for r in results
        ]
        text = format_table(
            ["Bits", "Policy", "Mean |err|", "RMSE", "Iterations"],
            rows,
            title="Table IV (mechanism): G-group reconstruction fidelity, 768x768 layer",
        )
        emit(results_dir, "table4_fidelity.txt", text)

        by_key = {(r.policy, r.bits): r for r in results}
        for bits in (2, 3, 4, 5):
            gobo = by_key[("gobo", bits)]
            kmeans = by_key[("kmeans", bits)]
            linear = by_key[("linear", bits)]
            # The paper's ordering: GOBO best L1, linear far worse.
            assert gobo.mean_abs_error <= kmeans.mean_abs_error * 1.001
            assert linear.mean_abs_error > 1.4 * gobo.mean_abs_error
            # GOBO reaches its minimum in far fewer iterations.
            assert gobo.iterations < kmeans.iterations
