"""Figure 4: effect of embedding-table quantization on accuracy."""

from collections import defaultdict

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import FIG4_SCENARIOS, fig4_embedding_accuracy
from repro.utils.tables import format_table


def test_fig4_embedding_accuracy(benchmark, results_dir):
    points = run_once(benchmark, fig4_embedding_accuracy)

    by_model = defaultdict(dict)
    for point in points:
        by_model[point.model][point.scenario] = point
    scenarios = [scenario for scenario, _, _ in FIG4_SCENARIOS]
    rows = [
        [model] + [f"{by_model[model][s].normalized:.4f}" for s in scenarios]
        for model in by_model
    ]
    text = format_table(
        ["Model"] + scenarios,
        rows,
        title="Figure 4: normalized accuracy under embedding quantization",
    )
    emit(results_dir, "fig4_embedding_accuracy.txt", text)

    for model, per_scenario in by_model.items():
        # Embedding-only 4-bit quantization keeps accuracy within ~2% of
        # baseline for every model (paper: within 0.5%, sometimes above).
        assert per_scenario[scenarios[1]].normalized > 0.98, model
        # 3-bit embeddings cost more but stay usable; tiny-distilbert (only
        # 2 encoder layers of redundancy) is the most fragile.
        assert per_scenario[scenarios[0]].normalized > 0.75, model
        # 4-bit embeddings never do worse than 3-bit by a meaningful margin,
        # in either scenario family.
        assert (
            per_scenario[scenarios[1]].normalized
            >= per_scenario[scenarios[0]].normalized - 0.02
        ), model
        assert (
            per_scenario[scenarios[3]].normalized
            >= per_scenario[scenarios[2]].normalized - 0.02
        ), model
