"""Figure 3: per-FC-layer outlier percentage across BERT-Base, plus the
compression-ratio-vs-group-size curve from the same figure block."""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig3_compression_curve, fig3_outlier_census
from repro.utils.tables import format_table


def test_fig3_outlier_census(benchmark, results_dir):
    census = run_once(benchmark, lambda: fig3_outlier_census("bert-base"))

    lines = [f"{index + 1:3d}  {name:45s} {fraction * 100:.3f}%"
             for index, (name, fraction) in enumerate(census)]
    text = "Figure 3: per-FC-layer outlier percentage (BERT-Base, 73 layers)\n"
    text += "\n".join(lines)
    emit(results_dir, "fig3_outlier_census.txt", text)

    fractions = np.array([fraction for _, fraction in census])
    assert fractions.size == 73
    # Paper: every layer below ~0.4% except the last, which stays under 1%.
    assert np.all(fractions[:-1] < 0.004)
    assert fractions[-1] < 0.01
    # The last (pooler) layer carries the largest fringe.
    assert fractions[-1] > np.median(fractions[:-1])
    # Weighted average ~0.1% across the model.
    assert 0.0003 < fractions.mean() < 0.003


def test_fig3_compression_curve(benchmark, results_dir):
    curves = run_once(
        benchmark,
        lambda: fig3_compression_curve(
            bits_list=(2, 3, 4, 5, 6),
            weight_counts=(4, 16, 64, 256, 1024, 4096),
        ),
    )
    header = ["Weights in SM"] + [f"{bits}-bit" for bits in sorted(curves)]
    counts = [count for count, _ in curves[2]]
    rows = []
    for i, count in enumerate(counts):
        rows.append([count] + [f"{curves[bits][i][1]:.2f}x" for bits in sorted(curves)])
    text = format_table(header, rows, title="Figure 3 (left): compression ratio vs group size")
    emit(results_dir, "fig3_compression_curve.txt", text)

    # Fewer bits win only once the group is large enough to amortize the
    # reconstruction table — the crossover the figure shows.
    assert curves[2][0][1] < curves[6][-1][1]
    for bits, curve in curves.items():
        ratios = [ratio for _, ratio in curve]
        assert ratios == sorted(ratios), f"{bits}-bit curve must rise"
    # At 4096 weights per group the ratios approach 32/bits.
    assert abs(curves[3][-1][1] - 32 / 3) / (32 / 3) < 0.15
