"""Table VII: embedding-table size and compression ratio per model."""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import table7_embeddings


def test_table7_embeddings(benchmark, results_dir):
    result = run_once(benchmark, table7_embeddings)
    text = result.render()
    emit(results_dir, "table7_embeddings.txt", text)

    # Baseline FP32 sizes (paper column 1).
    assert "89.42 MB" in text       # BERT-Base / DistilBERT
    assert "119.23 MB" in text      # BERT-Large
    assert "147.26 MB" in text      # RoBERTa
    assert "196.35 MB" in text      # RoBERTa-Large

    # Compression ratios: ~10.4x at 3 bits, ~7.9x at 4 bits (paper:
    # 10.10-10.66x and 7.69-8.00x).
    for row in result.rows:
        cr3 = float(row[3].rstrip("x"))
        cr4 = float(row[5].rstrip("x"))
        assert 10.0 < cr3 < 10.7, row[0]
        assert 7.6 < cr4 < 8.0, row[0]
