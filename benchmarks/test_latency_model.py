"""Extension: roofline latency of FP32 vs GOBO-compressed inference.

Not a table in the arXiv text, but the 'low latency' claim of the title: on
a memory-bound device, streaming 3-bit weights instead of FP32 cuts batch-1
latency by up to the compression ratio; once compression makes layers
compute-bound, the roofline caps the gain.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.core.quantizer import quantize_tensor
from repro.hw import EDGE_NPU, SERVER_ACCELERATOR, gobo_speedup, inference_latency
from repro.models import get_config
from repro.models.zoo import SyntheticWeightSpec, synthetic_layer_weights
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def gobo_bits():
    """Effective bits/weight from the byte-accurate storage accounting.

    Derived by quantizing a representative BERT-Base FC layer (768x768,
    3-bit) and reading ``StorageReport.effective_bits_per_weight`` — the
    packed codes plus centroid table plus outlier overhead — instead of
    hard-coding a constant that can drift from ``repro.core.formats``.
    """
    weights = synthetic_layer_weights((768, 768), SyntheticWeightSpec(), rng=0)
    tensor, _ = quantize_tensor(weights, bits=3)
    bits = tensor.storage().effective_bits_per_weight
    assert 3.0 < bits < 3.5  # 3-bit codes + small outlier/table overhead
    return bits


def test_latency_table(benchmark, results_dir, gobo_bits):
    GOBO_BITS = gobo_bits

    def build():
        rows = []
        for model_name in ("bert-base", "bert-large"):
            config = get_config(model_name)
            for hardware in (EDGE_NPU, SERVER_ACCELERATOR):
                for seq in (16, 128):
                    fp32 = inference_latency(config, hardware, seq, 32.0)
                    gobo = inference_latency(config, hardware, seq, GOBO_BITS)
                    rows.append(
                        [
                            model_name,
                            hardware.name,
                            seq,
                            f"{fp32.latency_seconds * 1e3:.2f} ms",
                            f"{gobo.latency_seconds * 1e3:.2f} ms",
                            f"{fp32.latency_seconds / gobo.latency_seconds:.2f}x",
                            f"{fp32.memory_bound_fraction * 100:.0f}%",
                        ]
                    )
        return rows

    rows = run_once(benchmark, build)
    text = format_table(
        ["Model", "Hardware", "Seq", "FP32 latency", "GOBO latency", "Speedup",
         "FP32 mem-bound"],
        rows,
        title=(
            "Extension: roofline inference latency, FP32 vs GOBO "
            f"({GOBO_BITS:.2f} eff. bits)"
        ),
    )
    emit(results_dir, "latency_model.txt", text)

    # Short-sequence edge inference gets (nearly) the full compression ratio.
    edge_short = gobo_speedup(get_config("bert-base"), EDGE_NPU, 16, GOBO_BITS)
    assert edge_short > 10.0
    # Every configuration gains, and none exceeds the traffic cut.
    for row in rows:
        speedup = float(row[5].rstrip("x"))
        assert 1.0 <= speedup <= 32.0 / GOBO_BITS + 1e-6
