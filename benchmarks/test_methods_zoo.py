"""Method-zoo benchmark: every registered spec through the engine, timed.

Runs each spec from :func:`repro.quant.registry.available_specs` end-to-end
on an untrained tiny model (no fine-tuning, so this file runs in smoke mode
too): quantize, reconstruct, archive, and re-run with a second worker count
to prove archive bytes are worker-independent.  ``test_record_bench_methods_json``
writes ``BENCH_methods.json`` to ``benchmarks/results/`` (own ``perf_counter``
timings, so it records under ``--benchmark-disable``);
``scripts/check_bench.py`` schema-checks it (``bench-methods/v1``), and the
committed baseline lives at ``benchmarks/BENCH_methods.json``.

Measured compression ratios on tiny tensors are dominated by centroid-table
overhead (a 2^8-entry table next to a 500-element tensor), so the gated CR
column is the analytic full-scale one (:func:`zoo_model_bytes` at BERT-Base
dimensions) — identical to what Table III reports.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import _smoke_mode
from repro.core.model_quantizer import select_parameters
from repro.core.serialization import save_quantized_model
from repro.experiments.tables import (
    _average_outlier_fraction,
    fp32_model_bytes,
    zoo_model_bytes,
)
from repro.models import build_model, get_config
from repro.quant.registry import available_specs, build_quantizer

MODEL = "tiny-distilbert"
FULL_SCALE_MODEL = "bert-base"
WORKER_COUNTS = (1, 2)
REPEATS = 1 if _smoke_mode() else 2


@pytest.fixture(scope="module")
def model():
    return build_model(get_config(MODEL), task="encoder", rng=0)


@pytest.fixture(scope="module")
def selection(model):
    return select_parameters(model)


def _run_spec(spec, model, selection, workers):
    quantizer = build_quantizer(spec)
    return quantizer.quantize(
        model.state_dict(),
        selection.fc_names,
        selection.embedding_names,
        workers=workers,
    )


def _rmse(state, quantized):
    reconstructed = quantized.state_dict(np.float64)
    total, count = 0.0, 0
    for name in quantized.quantized:
        diff = np.asarray(state[name], dtype=np.float64) - reconstructed[name]
        total += float(np.square(diff).sum())
        count += diff.size
    return (total / count) ** 0.5


@pytest.mark.parametrize("spec", available_specs())
def test_bench_method_spec(benchmark, spec, model, selection):
    quantized = benchmark.pedantic(
        lambda: _run_spec(spec, model, selection, workers=1),
        rounds=REPEATS, iterations=1,
    )
    assert not quantized.report.failures
    assert _rmse(model.state_dict(), quantized) < 0.05


def test_record_bench_methods_json(results_dir, tmp_path, model, selection):
    """Record the BENCH_methods.json baseline (see module docstring)."""
    config = get_config(FULL_SCALE_MODEL)
    fp32 = fp32_model_bytes(config)
    outlier_fraction = _average_outlier_fraction(FULL_SCALE_MODEL)
    state = model.state_dict()

    per_spec = {}
    for spec in available_specs():
        best, quantized = float("inf"), None
        for _ in range(REPEATS):
            start = time.perf_counter()
            out = _run_spec(spec, model, selection, workers=1)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best, quantized = elapsed, out
        archives = []
        for index, workers in enumerate(WORKER_COUNTS):
            result = quantized if workers == 1 else _run_spec(
                spec, model, selection, workers=workers
            )
            path = tmp_path / f"{spec}-w{workers}.npz"
            save_quantized_model(result, path)
            archives.append(path.read_bytes())
        per_spec[spec] = {
            "seconds": best,
            "compression_ratio": quantized.model_compression_ratio(),
            "full_scale_compression_ratio": fp32
            / zoo_model_bytes(config, spec, outlier_fraction),
            "rmse": _rmse(state, quantized),
            "byte_identical": all(blob == archives[0] for blob in archives),
        }

    record = {
        "schema": "bench-methods/v1",
        "smoke": _smoke_mode(),
        "config": {
            "model": MODEL,
            "full_scale_model": FULL_SCALE_MODEL,
            "specs": list(available_specs()),
            "workers": list(WORKER_COUNTS),
            "repeats": REPEATS,
            "cpu_count": os.cpu_count() or 1,
        },
        "measurements": {"specs": per_spec},
    }
    out = results_dir / "BENCH_methods.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    slowest = max(per_spec, key=lambda spec: per_spec[spec]["seconds"])
    print(
        f"\n[written to benchmarks/results/BENCH_methods.json] "
        f"{len(per_spec)} specs, slowest {slowest} "
        f"{per_spec[slowest]['seconds'] * 1000:.0f}ms"
    )

    # Worker-count independence is the hardware-independent gate.
    for spec, row in per_spec.items():
        assert row["byte_identical"], f"{spec} archives differ across worker counts"


def test_bench_methods_json_is_fresh(results_dir):
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("ordering not guaranteed under xdist")
    path = results_dir / "BENCH_methods.json"
    assert path.exists(), "test_record_bench_methods_json did not run first"
    record = json.loads(path.read_text())
    assert record["schema"] == "bench-methods/v1"
