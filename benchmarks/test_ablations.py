"""Ablations of GOBO's design choices (DESIGN.md section 6).

Each ablation removes one ingredient of GOBO and shows, in weight space,
why the paper's design keeps it.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.core.binning import (
    assign_to_centroids,
    equal_population_centroids,
    linear_centroids,
)
from repro.core.clustering import gobo_cluster, kmeans_cluster
from repro.core.outliers import OutlierDetector
from repro.models.zoo import SyntheticWeightSpec, synthetic_layer_weights
from repro.utils.tables import format_table


def _layer():
    return synthetic_layer_weights((768, 768), SyntheticWeightSpec(), rng=7)


def test_ablation_outlier_threshold(benchmark, results_dir):
    """Sweep the log-probability threshold: outlier fraction vs G-group error."""

    def sweep():
        layer = _layer()
        rows = []
        for threshold in (-2.0, -3.0, -4.0, -5.0, -6.0):
            split = OutlierDetector(threshold).split(layer)
            gaussian = split.gaussian_values(layer).astype(np.float64)
            result = gobo_cluster(gaussian, 3)
            rows.append(
                [
                    threshold,
                    f"{split.outlier_fraction * 100:.3f}%",
                    f"{result.l1_norm() / gaussian.size:.6f}",
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        ["Threshold", "Outlier %", "G-group mean |err|"],
        rows,
        title="Ablation: outlier threshold (-4 is the paper's default)",
    )
    emit(results_dir, "ablation_outlier_threshold.txt", text)

    fractions = [float(row[1].rstrip("%")) for row in rows]
    assert fractions == sorted(fractions, reverse=True)  # stricter -> fewer
    default = next(row for row in rows if row[0] == -4.0)
    assert float(default[1].rstrip("%")) < 0.5


def test_ablation_init_scheme(benchmark, results_dir):
    """Equal-population init vs linear init for the same L1 iteration."""

    def compare():
        layer = _layer()
        split = OutlierDetector().split(layer)
        gaussian = split.gaussian_values(layer).astype(np.float64)
        equal_init = gobo_cluster(gaussian, 3)
        linear_init = gobo_cluster(
            gaussian, 3, initial_centroids=linear_centroids(gaussian, 8)
        )
        return gaussian.size, equal_init, linear_init

    size, equal_init, linear_init = run_once(benchmark, compare)
    text = format_table(
        ["Init", "Iterations", "Final mean |err|"],
        [
            ["equal-population", equal_init.iterations, f"{equal_init.l1_norm() / size:.6f}"],
            ["linear", linear_init.iterations, f"{linear_init.l1_norm() / size:.6f}"],
        ],
        title="Ablation: centroid initialization for GOBO's L1 iteration",
    )
    emit(results_dir, "ablation_init_scheme.txt", text)

    # Equal-population init starts close to the optimum, so it stops sooner
    # (or equal) and never ends worse than 5% off the linear-init result.
    assert equal_init.iterations <= linear_init.iterations + 2
    assert equal_init.l1_norm() <= linear_init.l1_norm() * 1.05


def test_ablation_stopping_rule(benchmark, results_dir):
    """L1-minimum stopping vs assignment-fixpoint stopping."""

    def compare():
        layer = _layer()
        split = OutlierDetector().split(layer)
        gaussian = split.gaussian_values(layer).astype(np.float64)
        return gaussian.size, gobo_cluster(gaussian, 3), kmeans_cluster(gaussian, 3)

    size, l1_stop, fixpoint = run_once(benchmark, compare)
    text = format_table(
        ["Stopping rule", "Iterations", "Final mean |err| (L1)", "Final RMSE-ish (L2)"],
        [
            ["L1 minimum (GOBO)", l1_stop.iterations,
             f"{l1_stop.l1_norm() / size:.6f}", f"{(l1_stop.l2_norm() / size) ** 0.5:.6f}"],
            ["assignment fixpoint (K-Means)", fixpoint.iterations,
             f"{fixpoint.l1_norm() / size:.6f}", f"{(fixpoint.l2_norm() / size) ** 0.5:.6f}"],
        ],
        title="Ablation: stopping rule",
    )
    emit(results_dir, "ablation_stopping_rule.txt", text)

    assert l1_stop.iterations * 4 < fixpoint.iterations
    assert l1_stop.l1_norm() <= fixpoint.l1_norm() * 1.001


def test_ablation_keep_vs_clamp_outliers(benchmark, results_dir):
    """Keeping outliers FP32 vs forcing them through the G dictionary."""

    def compare():
        layer = _layer().astype(np.float64)
        split = OutlierDetector().split(layer)
        gaussian = split.gaussian_values(layer)
        result = gobo_cluster(gaussian, 3)
        # With outliers kept: their error is zero; G error as measured.
        kept_total_error = float(
            np.abs(gaussian - result.centroids[result.assignment]).sum()
        )
        # Without outlier handling: quantize everything with one dictionary.
        everything = layer.ravel()
        result_all = gobo_cluster(everything, 3)
        clamped_total_error = float(
            np.abs(everything - result_all.centroids[result_all.assignment]).sum()
        )
        outlier_count = split.outlier_count
        return kept_total_error, clamped_total_error, outlier_count, everything.size

    kept, clamped, outliers, size = run_once(benchmark, compare)
    text = "\n".join(
        [
            "Ablation: keep outliers in FP32 vs clamp into the G dictionary",
            f"outliers                        : {outliers} of {size}",
            f"total |err|, outliers kept      : {kept:.3f}",
            f"total |err|, outliers clamped   : {clamped:.3f}",
            f"error amplification from clamping: {clamped / kept:.2f}x",
        ]
    )
    emit(results_dir, "ablation_keep_outliers.txt", text)

    # A 0.1% fringe, if clamped, measurably drags total error up — the
    # paper's 'preserving outliers proves essential' point.
    assert clamped > kept
