"""Figure 2: GOBO vs K-Means convergence on a representative layer."""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig2_convergence
from repro.utils.tables import format_table


def test_fig2_convergence(benchmark, results_dir):
    comparison = run_once(
        benchmark,
        lambda: fig2_convergence(
            layer_shape=(768, 768), bits=3, with_inference_error=True
        ),
    )

    rows = []
    kmeans_series = comparison.kmeans_trace.as_series()
    gobo_series = comparison.gobo_trace.as_series()
    for iteration in range(0, len(kmeans_series), max(1, len(kmeans_series) // 20)):
        _, km_l1, km_l2 = kmeans_series[iteration]
        if iteration < len(gobo_series):
            _, gb_l1, gb_l2 = gobo_series[iteration]
            rows.append([iteration, f"{gb_l1:.1f}", f"{gb_l2:.3f}", f"{km_l1:.1f}", f"{km_l2:.3f}"])
        else:
            rows.append([iteration, "-", "-", f"{km_l1:.1f}", f"{km_l2:.3f}"])
    table = format_table(
        ["Iter", "GOBO L1", "GOBO L2", "KMeans L1", "KMeans L2"],
        rows,
        title="Figure 2: L1/L2 norm vs iteration (768x768 G group, 3-bit)",
    )
    summary = "\n".join(
        [
            table,
            f"GOBO converged at iteration   : {comparison.gobo_iterations}"
            f" (inference error {comparison.gobo_inference_error * 100:+.2f}%)",
            f"K-Means converged at iteration: {comparison.kmeans_iterations}"
            f" (inference error {comparison.kmeans_inference_error * 100:+.2f}%)",
            f"speedup                       : {comparison.speedup:.1f}x",
        ]
    )
    emit(results_dir, "fig2_convergence.txt", summary)

    # The paper: GOBO converges ~9x faster and lands at a better L1.
    assert comparison.speedup > 4.0
    assert comparison.gobo_final_l1 <= comparison.kmeans_final_l1 * 1.01
    # GOBO reaches its minimum within a handful of iterations (paper: ~7).
    assert comparison.gobo_iterations <= 15
