"""Table V: centroid-selection policies on DistilBERT / MNLI."""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import (
    centroid_policy_table,
    fp32_model_bytes,
    gobo_model_bytes,
)
from repro.models import get_config


def _score(result, bits, policy) -> float:
    for row in result.rows:
        if row[0] == bits and row[1] == policy:
            return float(row[2].rstrip("%"))
    raise KeyError((bits, policy))


def test_table5_distilbert(benchmark, results_dir):
    result = run_once(
        benchmark,
        lambda: centroid_policy_table(
            "distilbert", "mnli", (3, 4, 5), policies=("kmeans", "gobo")
        ),
    )
    emit(results_dir, "table5_distilbert.txt", result.render())

    baseline = float(result.rows[0][2].rstrip("%"))
    # Paper: 3-bit GOBO loses <1%, 4-bit is lossless.  The tiny stand-in has
    # only 2 encoder layers of redundancy, so its 3-bit loss is larger, but
    # the 4-bit-lossless shape — Table V's headline — holds.
    assert baseline - _score(result, 3, "gobo") < 15.0
    assert baseline - _score(result, 4, "gobo") <= 1.0
    assert baseline - _score(result, 5, "gobo") <= 0.5


def test_distilbert_is_20x_smaller_than_bert_base(benchmark):
    """The paper's KD+GOBO composition: DistilBERT + 3-bit GOBO ~ 20x
    smaller than FP32 BERT-Base."""

    def ratio() -> float:
        bert = get_config("bert-base")
        distil = get_config("distilbert")
        return fp32_model_bytes(bert) / gobo_model_bytes(distil, 3, 3, 0.001)

    value = run_once(benchmark, ratio)
    assert 17.0 < value < 23.0
