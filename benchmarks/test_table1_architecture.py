"""Table I: BERT architecture inventory."""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import table1_architecture


def test_table1_architecture(benchmark, results_dir):
    result = run_once(benchmark, table1_architecture)
    text = result.render()
    emit(results_dir, "table1_architecture.txt", text)

    assert "768 x 768" in text          # BERT-Base attention FCs
    assert "768 x 3072" in text         # BERT-Base intermediate
    assert "1024 x 4096" in text        # BERT-Large intermediate
    assert "73" in text and "145" in text  # total FC layer counts
    # Total parameters: paper rounds to 110M / 340M; the exact census lands
    # within a few percent of those.
    totals = [
        int(row[-1].rstrip("M"))
        for row in result.rows
        if row[2] == "Total parameters"
    ]
    assert abs(totals[0] - 110) <= 3 and abs(totals[1] - 340) <= 8
