"""Table II: memory footprint of BERT-Base and BERT-Large."""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import table2_footprint


def test_table2_footprint(benchmark, results_dir):
    result = run_once(benchmark, table2_footprint)
    text = result.render()
    emit(results_dir, "table2_footprint.txt", text)

    # The paper's Table II numbers.
    assert "89.42 MB" in text           # BERT-Base embedding tables
    assert "326.25 MB" in text          # BERT-Base weights
    assert "119.2" in text              # BERT-Large embeddings (119.22 MB)
    assert "3 KB" in text and "4 KB" in text      # input per word
    assert "12 KB" in text and "16 KB" in text    # largest acts per word
    assert "1.5 MB" in text and "2.0 MB" in text  # activations at seq 128
