"""Shared fixtures for the benchmark/reproduction harness.

Every benchmark writes its rendered table or figure series to
``benchmarks/results/`` so EXPERIMENTS.md can cite the regenerated artifacts,
and registers one timed measurement with pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Write an artifact and echo it for -s runs."""
    (results_dir / name).write_text(text + "\n")
    print(f"\n{text}\n[written to benchmarks/results/{name}]")


def run_once(benchmark, func):
    """Register ``func`` with pytest-benchmark as a single-shot measurement.

    Table/figure regenerations are minutes-long end-to-end runs; measuring
    them once is the honest cost figure (kernel-level throughput has its own
    multi-round benchmarks in test_kernels.py).
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
