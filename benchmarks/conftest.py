"""Shared fixtures for the benchmark/reproduction harness.

Every benchmark writes its rendered table or figure series to
``benchmarks/results/`` so EXPERIMENTS.md can cite the regenerated artifacts,
and registers one timed measurement with pytest-benchmark.

Environment switches (used by the CI observability job):

* ``REPRO_BENCH_SMOKE=1`` — skip the fine-tuning-backed benchmarks (the
  table/figure regenerations that train tiny models first) so the remaining
  suite exercises the quantization pipeline end-to-end in seconds.
* ``REPRO_TRACE=path.jsonl`` — record an observability trace of the whole
  benchmark session to ``path.jsonl``; ``repro profile --check`` then fails
  the job on any schema violation.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmarks that fine-tune models before measuring; skipped in smoke mode.
TRAINING_HEAVY = frozenset({
    "test_table3_mnli_methods.py",
    "test_table4_centroid_policies.py",
    "test_table5_distilbert.py",
    "test_table6_roberta.py",
    "test_fig4_embedding_accuracy.py",
    "test_sensitivity_scan.py",
})


def _smoke_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def pytest_collection_modifyitems(config, items):
    if not _smoke_mode():
        return
    skip = pytest.mark.skip(reason="REPRO_BENCH_SMOKE=1 skips fine-tuning benchmarks")
    for item in items:
        if item.path.name in TRAINING_HEAVY:
            item.add_marker(skip)


@pytest.fixture(scope="session", autouse=True)
def _session_trace():
    """Record the whole benchmark session when REPRO_TRACE names a file."""
    trace_path = os.environ.get("REPRO_TRACE")
    if not trace_path:
        yield
        return
    from repro import obs

    sink = obs.JsonlSink(trace_path)
    obs.install(sink)
    try:
        yield
    finally:
        obs.uninstall(sink)
        sink.close()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Write an artifact and echo it for -s runs."""
    (results_dir / name).write_text(text + "\n")
    print(f"\n{text}\n[written to benchmarks/results/{name}]")


def run_once(benchmark, func):
    """Register ``func`` with pytest-benchmark as a single-shot measurement.

    Table/figure regenerations are minutes-long end-to-end runs; measuring
    them once is the honest cost figure (kernel-level throughput has its own
    multi-round benchmarks in test_kernels.py).
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
