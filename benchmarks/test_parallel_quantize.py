"""Layer-parallel quantization engine: identity and speedup measurement.

Whole-model GOBO compression is embarrassingly parallel (every FC matrix and
embedding table is quantized independently), so the engine must deliver the
exact serial result at any worker count.  This benchmark asserts bit-identity
on the tiny zoo BERT and records per-layer timings plus the end-to-end
speedup for workers in {1, 2, 4}.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.core.model_quantizer import quantize_state_dict, select_parameters
from repro.models import build_model, get_config

WORKER_COUNTS = (1, 2, 4)


def _zoo_bert_state():
    model = build_model(get_config("tiny-bert-base"), task="encoder", rng=0)
    selection = select_parameters(model)
    return model.state_dict(), selection


def _quantize(state, selection, workers):
    return quantize_state_dict(
        state,
        fc_names=selection.fc_names,
        embedding_names=selection.embedding_names,
        weight_bits=3,
        embedding_bits=4,
        workers=workers,
    )


def test_parallel_engine_identity_and_speedup(results_dir, benchmark):
    state, selection = _zoo_bert_state()

    results = {workers: _quantize(state, selection, workers) for workers in WORKER_COUNTS}

    # --- bit-identity: every worker count reproduces the serial result -----
    serial = results[1]
    serial_state = serial.state_dict()
    for workers in WORKER_COUNTS[1:]:
        parallel = results[workers]
        assert set(parallel.quantized) == set(serial.quantized)
        for name, tensor in serial.quantized.items():
            other = parallel.quantized[name]
            assert other.packed_codes == tensor.packed_codes
            np.testing.assert_array_equal(other.centroids, tensor.centroids)
            np.testing.assert_array_equal(other.outlier_values, tensor.outlier_values)
        parallel_state = parallel.state_dict()
        for name in serial_state:
            np.testing.assert_array_equal(parallel_state[name], serial_state[name])
        assert parallel.iterations == serial.iterations

    # --- timing artifact ---------------------------------------------------
    serial_wall = serial.report.wall_seconds
    lines = [serial.report.render(), "", "End-to-end wall time by worker count:"]
    for workers in WORKER_COUNTS:
        report = results[workers].report
        speedup = serial_wall / report.wall_seconds if report.wall_seconds else float("inf")
        lines.append(
            f"workers={workers}: {report.wall_seconds * 1000:.1f} ms "
            f"(speedup {speedup:.2f}x vs serial, "
            f"effective parallelism {report.effective_parallelism:.2f}x)"
        )
    emit(results_dir, "parallel_engine.txt", "\n".join(lines))

    run_once(benchmark, lambda: _quantize(state, selection, WORKER_COUNTS[-1]))


def test_per_layer_timings_recorded(results_dir):
    state, selection = _zoo_bert_state()
    quantized = _quantize(state, selection, workers=2)
    report = quantized.report
    assert len(report.layers) == len(selection.fc_names) + len(selection.embedding_names)
    assert all(record.seconds > 0 for record in report.layers)
    assert report.wall_seconds > 0
    # The report's byte accounting matches the model's own.
    assert report.total_compressed_bytes == quantized.compressed_bytes()
    assert report.total_original_bytes == quantized.original_bytes()
