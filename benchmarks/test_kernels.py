"""Throughput benchmarks for GOBO's computational kernels.

These are proper multi-round pytest-benchmark measurements on realistic
layer sizes (a 768x768 BERT-Base attention FC), quantifying the paper's
"quantizing the model takes about 10 minutes on a single CPU core" claim at
our scale.
"""

import numpy as np
import pytest

from repro.core.binning import assign_to_centroids, equal_population_centroids
from repro.core.clustering import gobo_cluster, kmeans_cluster
from repro.core.outliers import OutlierDetector
from repro.core.quantizer import quantize_tensor
from repro.models.zoo import SyntheticWeightSpec, synthetic_layer_weights
from repro.utils.bitpack import pack_bits, unpack_bits


@pytest.fixture(scope="module")
def layer():
    return synthetic_layer_weights((768, 768), SyntheticWeightSpec(), rng=0)


@pytest.fixture(scope="module")
def gaussian_group(layer):
    split = OutlierDetector().split(layer)
    return split.gaussian_values(layer).astype(np.float64)


def test_bench_outlier_detection(benchmark, layer):
    split = benchmark(lambda: OutlierDetector().split(layer))
    assert 0 < split.outlier_count < layer.size // 100


def test_bench_equal_population_init(benchmark, gaussian_group):
    centroids = benchmark(lambda: equal_population_centroids(gaussian_group, 8))
    assert centroids.size == 8


def test_bench_assignment(benchmark, gaussian_group):
    centroids = equal_population_centroids(gaussian_group, 8)
    assignment = benchmark(lambda: assign_to_centroids(gaussian_group, centroids))
    assert assignment.size == gaussian_group.size


def test_bench_gobo_cluster(benchmark, gaussian_group):
    result = benchmark(lambda: gobo_cluster(gaussian_group, 3))
    assert result.converged


def test_bench_kmeans_cluster_to_fixpoint(benchmark, gaussian_group):
    result = benchmark.pedantic(
        lambda: kmeans_cluster(gaussian_group, 3), rounds=3, iterations=1
    )
    assert result.converged


def test_bench_full_layer_quantization(benchmark, layer):
    quantized = benchmark.pedantic(
        lambda: quantize_tensor(layer, bits=3)[0], rounds=3, iterations=1
    )
    assert quantized.compression_ratio() > 9.0


def test_bench_dequantize(benchmark, layer):
    quantized, _ = quantize_tensor(layer, bits=3)
    restored = benchmark(quantized.dequantize)
    assert restored.shape == layer.shape


def test_bench_pack_bits(benchmark, rng_codes=None):
    codes = np.random.default_rng(0).integers(0, 8, size=768 * 768)
    packed = benchmark(lambda: pack_bits(codes, 3))
    assert len(packed) == (codes.size * 3 + 7) // 8


def test_bench_unpack_bits(benchmark):
    codes = np.random.default_rng(0).integers(0, 8, size=768 * 768)
    packed = pack_bits(codes, 3)
    unpacked = benchmark(lambda: unpack_bits(packed, 3, codes.size))
    assert unpacked.size == codes.size
