"""Throughput benchmarks for GOBO's computational kernels.

These are proper multi-round pytest-benchmark measurements on realistic
layer sizes (a 768x768 BERT-Base attention FC), quantifying the paper's
"quantizing the model takes about 10 minutes on a single CPU core" claim at
our scale — plus the serving-side kernels: lookup matmul vs the
dequantize-then-matmul baseline, bit-unpack throughput, and lazy-load
bytes-touched.

``test_record_bench_kernels_json`` writes ``BENCH_kernels.json`` to
``benchmarks/results/`` with its own ``perf_counter`` timings (independent
of pytest-benchmark, so it still records under ``--benchmark-disable``, as
the CI smoke job runs it).  ``scripts/check_bench.py`` schema-checks the
file and gates batch-1 lookup speedup >= 1.0x; the first recorded baseline
is committed at ``benchmarks/BENCH_kernels.json``.

In ``REPRO_BENCH_SMOKE`` mode the serving benchmarks shrink to a 256x256
layer so the job finishes in seconds; the JSON records which size it
measured.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import _smoke_mode
from repro import obs
from repro.core.binning import assign_to_centroids, equal_population_centroids
from repro.core.clustering import gobo_cluster, kmeans_cluster
from repro.core.model_quantizer import quantize_model
from repro.core.outliers import OutlierDetector
from repro.core.quantizer import quantize_tensor
from repro.core.serialization import load_quantized_model, save_quantized_model
from repro.kernels import LookupKernel, dequantize_matmul
from repro.models import BertModel, get_config
from repro.models.zoo import SyntheticWeightSpec, synthetic_layer_weights
from repro.utils.bitpack import pack_bits, unpack_bits

#: Serving-kernel layer shape: full BERT-Base FC, or small in smoke mode.
KERNEL_SHAPE = (256, 256) if _smoke_mode() else (768, 768)
#: Timed repeats for the perf_counter measurements (min-of-N).
REPEATS = 5 if _smoke_mode() else 20


@pytest.fixture(scope="module")
def layer():
    return synthetic_layer_weights((768, 768), SyntheticWeightSpec(), rng=0)


@pytest.fixture(scope="module")
def gaussian_group(layer):
    split = OutlierDetector().split(layer)
    return split.gaussian_values(layer).astype(np.float64)


@pytest.fixture(scope="module")
def codes():
    """The shared 3-bit code array for the bitpack benchmarks."""
    return np.random.default_rng(0).integers(0, 8, size=768 * 768)


@pytest.fixture(scope="module")
def quantized_kernel_layer():
    weights = synthetic_layer_weights(KERNEL_SHAPE, SyntheticWeightSpec(), rng=1)
    tensor, _ = quantize_tensor(weights, bits=3)
    return tensor


def test_bench_outlier_detection(benchmark, layer):
    split = benchmark(lambda: OutlierDetector().split(layer))
    assert 0 < split.outlier_count < layer.size // 100


def test_bench_equal_population_init(benchmark, gaussian_group):
    centroids = benchmark(lambda: equal_population_centroids(gaussian_group, 8))
    assert centroids.size == 8


def test_bench_assignment(benchmark, gaussian_group):
    centroids = equal_population_centroids(gaussian_group, 8)
    assignment = benchmark(lambda: assign_to_centroids(gaussian_group, centroids))
    assert assignment.size == gaussian_group.size


def test_bench_gobo_cluster(benchmark, gaussian_group):
    result = benchmark(lambda: gobo_cluster(gaussian_group, 3))
    assert result.converged


def test_bench_kmeans_cluster_to_fixpoint(benchmark, gaussian_group):
    result = benchmark.pedantic(
        lambda: kmeans_cluster(gaussian_group, 3), rounds=3, iterations=1
    )
    assert result.converged


def test_bench_full_layer_quantization(benchmark, layer):
    quantized = benchmark.pedantic(
        lambda: quantize_tensor(layer, bits=3)[0], rounds=3, iterations=1
    )
    assert quantized.compression_ratio() > 9.0


def test_bench_dequantize(benchmark, layer):
    quantized, _ = quantize_tensor(layer, bits=3)
    restored = benchmark(quantized.dequantize)
    assert restored.shape == layer.shape


def test_bench_pack_bits(benchmark, codes):
    packed = benchmark(lambda: pack_bits(codes, 3))
    assert len(packed) == (codes.size * 3 + 7) // 8


def test_bench_unpack_bits(benchmark, codes):
    packed = pack_bits(codes, 3)
    unpacked = benchmark(lambda: unpack_bits(packed, 3, codes.size))
    assert unpacked.size == codes.size


# --------------------------------------------------------- serving kernels
def test_bench_lookup_matmul_batch1(benchmark, quantized_kernel_layer):
    kernel = LookupKernel(quantized_kernel_layer)
    x = np.random.default_rng(2).normal(size=(1, KERNEL_SHAPE[1]))
    y = benchmark(lambda: kernel.matmul(x))
    assert y.shape == (1, KERNEL_SHAPE[0])


def test_bench_dequantize_matmul_batch1(benchmark, quantized_kernel_layer):
    x = np.random.default_rng(2).normal(size=(1, KERNEL_SHAPE[1]))
    y = benchmark(lambda: dequantize_matmul(x, quantized_kernel_layer))
    assert y.shape == (1, KERNEL_SHAPE[0])


def _timeit(func, repeats=REPEATS):
    """Min-of-N wall time; independent of pytest-benchmark so the JSON
    baseline records even under --benchmark-disable."""
    func()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_lazy_load(tmp_path):
    """Archive size vs bytes actually mapped by a lazy load + one layer."""
    model = BertModel(get_config("tiny-bert-base")).eval()
    qmodel = quantize_model(model, weight_bits=3, embedding_bits=4)
    path = tmp_path / "bench_lazy.npz"
    save_quantized_model(qmodel, path)
    archive_bytes = path.stat().st_size

    def mapped_bytes(trace):
        return int(
            sum(e["value"] for e in trace.events if e["name"] == "npzmap.bytes_mapped")
        )

    start = time.perf_counter()
    with obs.scope() as load_trace:
        lazy = load_quantized_model(path, lazy=True)
    load_seconds = time.perf_counter() - start
    with obs.scope() as layer_trace:
        lazy.quantized[lazy.fc_names[0]]
    start = time.perf_counter()
    load_quantized_model(path)
    eager_seconds = time.perf_counter() - start
    return {
        "archive_bytes": archive_bytes,
        "lazy_load_seconds": load_seconds,
        "eager_load_seconds": eager_seconds,
        "bytes_touched_at_load": mapped_bytes(load_trace),
        "bytes_touched_first_layer": mapped_bytes(layer_trace),
    }


def test_record_bench_kernels_json(results_dir, quantized_kernel_layer, tmp_path):
    """Record the BENCH_kernels.json baseline (see module docstring)."""
    rng = np.random.default_rng(2)
    kernel = LookupKernel(quantized_kernel_layer)
    tensor = quantized_kernel_layer
    measurements = {}
    for batch in (1, 8):
        x = rng.normal(size=(batch, KERNEL_SHAPE[1]))
        lookup = _timeit(lambda: kernel.matmul(x))
        baseline = _timeit(lambda: dequantize_matmul(x, tensor))
        measurements[f"lookup_matmul_batch{batch}_seconds"] = lookup
        measurements[f"dequantize_matmul_batch{batch}_seconds"] = baseline
        measurements[f"speedup_batch{batch}"] = baseline / lookup

    codes = rng.integers(0, 8, size=KERNEL_SHAPE[0] * KERNEL_SHAPE[1])
    packed = pack_bits(codes, 3)
    unpack_seconds = _timeit(lambda: unpack_bits(packed, 3, codes.size))
    measurements["unpack_seconds"] = unpack_seconds
    measurements["unpack_values_per_second"] = codes.size / unpack_seconds
    measurements["lazy_load"] = _measure_lazy_load(tmp_path)

    record = {
        "schema": "bench-kernels/v1",
        "smoke": _smoke_mode(),
        "config": {
            "shape": list(KERNEL_SHAPE),
            "bits": 3,
            "batch_sizes": [1, 8],
            "repeats": REPEATS,
            "numpy": np.__version__,
        },
        "measurements": measurements,
    }
    out = results_dir / "BENCH_kernels.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\n[written to benchmarks/results/BENCH_kernels.json] "
          f"batch-1 speedup {measurements['speedup_batch1']:.2f}x")

    # The CI gate proper is scripts/check_bench.py; assert the invariant
    # here too so a local run fails loudly if the kernel regresses.  The
    # batch-1 case is the paper's latency scenario: per-centroid
    # accumulation must beat decode-then-BLAS when decode dominates.
    assert measurements["speedup_batch1"] >= 1.0, (
        f"lookup kernel slower than dequantize baseline at batch 1: "
        f"{measurements['speedup_batch1']:.2f}x"
    )


def test_bench_kernels_json_is_fresh(results_dir):
    """The recording test above must have produced a parseable file."""
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("ordering not guaranteed under xdist")
    path = results_dir / "BENCH_kernels.json"
    assert path.exists(), "test_record_bench_kernels_json did not run first"
    record = json.loads(path.read_text())
    assert record["schema"] == "bench-kernels/v1"
