"""Table VI: RoBERTa and RoBERTa-Large on MNLI, incl. the mixed 3b/4b rows."""

from benchmarks.conftest import emit, run_once
from repro.experiments.tables import centroid_policy_table


def _score(result, bits, policy) -> float:
    for row in result.rows:
        if row[0] == bits and row[1] == policy:
            return float(row[2].rstrip("%"))
    raise KeyError((bits, policy))


def _check(result):
    baseline = float(result.rows[0][2].rstrip("%"))
    # 4-bit GOBO near-lossless; 5-bit lossless (paper: 0.32% / 0.00%).
    assert baseline - _score(result, 4, "gobo") <= 1.5
    assert baseline - _score(result, 5, "gobo") <= 0.5
    # The mixed 3b/4b policy sits between uniform 3-bit and uniform 4-bit.
    mixed = _score(result, "3b/4b", "gobo-mixed")
    assert mixed >= _score(result, 3, "gobo") - 0.5
    assert mixed <= _score(result, 4, "gobo") + 1.0


def test_table6_roberta_base(benchmark, results_dir):
    result = run_once(
        benchmark,
        lambda: centroid_policy_table(
            "roberta-base", "mnli", (3, 4, 5), policies=("kmeans", "gobo"),
            mixed_rows=True,
        ),
    )
    emit(results_dir, "table6_roberta_base.txt", result.render())
    _check(result)


def test_table6_roberta_large(benchmark, results_dir):
    result = run_once(
        benchmark,
        lambda: centroid_policy_table(
            "roberta-large", "mnli", (3, 4, 5), policies=("kmeans", "gobo"),
            mixed_rows=True,
        ),
    )
    emit(results_dir, "table6_roberta_large.txt", result.render())
    _check(result)
