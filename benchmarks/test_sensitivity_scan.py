"""Extension: the per-layer sensitivity scan behind Table VI's mixed policy.

Section V: "We found that two FC layers ('Value layer' in self-attention and
Intermediate layer) in the first 6 BERT Encoders are the ones that are
sensitive."  This benchmark runs the analysis that produces such a finding —
quantize one layer at a time at 2 bits and rank the accuracy cost — on the
fine-tuned RoBERTa stand-in.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.accuracy import RECIPES, _build, get_finetuned
from repro.experiments.sensitivity import layer_sensitivity_scan, sensitive_components
from repro.utils.tables import format_table


def test_layer_sensitivity_scan(benchmark, results_dir):
    def scan():
        finetuned = get_finetuned("roberta-base", "mnli")
        probe = _build(finetuned.config_name, RECIPES["mnli"])
        # One early and one late encoder layer per component class.
        config_layers = tuple(
            f"bert.encoder.{index}.{component}.weight"
            for index in (0, 3)
            for component in (
                "attention.query", "attention.value", "intermediate", "output"
            )
        )
        results = layer_sensitivity_scan(
            finetuned.model, probe, finetuned.splits.eval, bits=2,
            layers=config_layers,
        )
        return results

    results = run_once(benchmark, scan)
    rows = [[r.layer, f"{r.score * 100:.2f}%", f"{r.drop * 100:+.2f}%"] for r in results]
    components = sensitive_components(results, top_fraction=0.25)
    text = format_table(
        ["Layer (2-bit in isolation)", "Score", "Drop"],
        rows,
        title="Extension: per-layer sensitivity scan, tiny-roberta on MNLI",
    ) + f"\nmost-sensitive components: {components}"
    emit(results_dir, "sensitivity_scan.txt", text)

    # The scan produces a usable ranking: sorted by drop, and quantizing a
    # single layer at 2 bits never costs more than quantizing all of them.
    drops = [r.drop for r in results]
    assert drops == sorted(drops, reverse=True)
    assert all(-0.2 <= d <= 1.0 for d in drops)
