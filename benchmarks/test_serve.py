"""Serving-layer benchmarks: request latency, micro-batch throughput, swap cost.

Measures the end-to-end serving path the paper's latency argument is about:
compressed-representation inference behind the micro-batching queue of
:mod:`repro.serve`.  Three numbers matter:

* **sequential latency** — one request at a time through the batcher
  (batch size 1, the queue's floor);
* **concurrent throughput** — a burst of clients sharing kernel forwards
  through the micro-batcher, plus the mean fused batch size it achieved;
* **hot-swap cost** — wall time of an atomic registry reload, the pause-free
  redeploy path.

``test_record_bench_serve_json`` writes ``BENCH_serve.json`` to
``benchmarks/results/`` (own ``perf_counter`` timings, so it records under
``--benchmark-disable``); ``scripts/check_bench.py`` schema-checks it, and
the committed baseline lives at ``benchmarks/BENCH_serve.json``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from benchmarks.conftest import _smoke_mode
from repro import obs
from repro.core.model_quantizer import quantize_model
from repro.core.serialization import save_quantized_model
from repro.models import build_model, get_config
from repro.serve import AdmissionController, MicroBatcher, ModelRegistry

CONFIG_NAME = "tiny-bert-base"
#: Client threads x requests per client for the throughput burst.
CLIENTS = 4 if _smoke_mode() else 8
REQUESTS_PER_CLIENT = 4 if _smoke_mode() else 16
SEQUENTIAL_REQUESTS = 5 if _smoke_mode() else 20


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    model = build_model(get_config(CONFIG_NAME), task="encoder", rng=0)
    quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
    path = tmp_path_factory.mktemp("serve_bench") / "model.npz"
    save_quantized_model(quantized, path)
    return path


@pytest.fixture
def registry(archive):
    registry = ModelRegistry()
    registry.register("bench", archive, config=CONFIG_NAME)
    yield registry
    registry.close()


def make_batcher(registry, window=0.02, max_batch=16):
    admission = AdmissionController(max_pending=256, request_timeout=60.0)
    return MicroBatcher(registry, admission,
                        batch_window=window, max_batch=max_batch)


def _sequential_seconds(batcher, requests: int) -> float:
    durations = []
    for index in range(requests):
        start = time.perf_counter()
        pending = batcher.submit("bench", [1 + index % 7, 2, 3, 4])
        batcher.wait(pending)
        durations.append(time.perf_counter() - start)
    return min(durations)


def _burst(batcher, clients: int, per_client: int):
    """(wall seconds, mean fused batch size) for a concurrent burst."""
    barrier = threading.Barrier(clients + 1)
    errors = []

    def client(index):
        barrier.wait()
        for request in range(per_client):
            try:
                pending = batcher.submit(
                    "bench", [1 + (index + request) % 7, 2, 3, 4]
                )
                batcher.wait(pending)
            except Exception as exc:  # noqa: BLE001 — recorded, not raised
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    with obs.scope() as trace:
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
    assert not errors, errors[0]
    batch_sizes = [
        event["attrs"]["batch_size"] for event in trace.events
        if event["event"] == "span" and event["name"] == "serve.batch"
    ]
    assert sum(batch_sizes) == clients * per_client
    mean_batch = sum(batch_sizes) / len(batch_sizes)
    return wall, mean_batch, max(batch_sizes)


def test_bench_sequential_request(benchmark, registry):
    batcher = make_batcher(registry, window=0.0)  # no fusion window: floor
    try:
        def one():
            pending = batcher.submit("bench", [1, 2, 3, 4])
            return batcher.wait(pending)

        result = benchmark(one)
        assert result["batch_size"] == 1
    finally:
        batcher.close()


def test_bench_registry_reload(benchmark, registry):
    entry = benchmark.pedantic(
        lambda: registry.reload("bench"), rounds=3, iterations=1
    )
    assert entry.version > 1


def test_record_bench_serve_json(results_dir, registry):
    """Record the BENCH_serve.json baseline (see module docstring)."""
    measurements = {}

    floor_batcher = make_batcher(registry, window=0.0)
    try:
        best = _sequential_seconds(floor_batcher, SEQUENTIAL_REQUESTS)
        measurements["sequential_request_seconds"] = best
    finally:
        floor_batcher.close()

    batcher = make_batcher(registry, window=0.02, max_batch=16)
    try:
        wall, mean_batch, max_batch = _burst(batcher, CLIENTS, REQUESTS_PER_CLIENT)
        total = CLIENTS * REQUESTS_PER_CLIENT
        measurements["concurrent_wall_seconds"] = wall
        measurements["concurrent_requests_per_second"] = total / wall
        measurements["mean_batch_size"] = mean_batch
        measurements["max_batch_size"] = max_batch
    finally:
        batcher.close()

    start = time.perf_counter()
    registry.reload("bench")
    measurements["reload_seconds"] = time.perf_counter() - start

    record = {
        "schema": "bench-serve/v1",
        "smoke": _smoke_mode(),
        "config": {
            "model": CONFIG_NAME,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "batch_window_ms": 20,
            "max_batch": 16,
        },
        "measurements": measurements,
    }
    out = results_dir / "BENCH_serve.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(
        f"\n[written to benchmarks/results/BENCH_serve.json] "
        f"{measurements['concurrent_requests_per_second']:.0f} req/s, "
        f"mean batch {mean_batch:.2f}"
    )

    # Micro-batching must actually fuse under a concurrent burst — the
    # subsystem's reason to exist.  check_bench.py gates the recorded file
    # the same way.
    assert measurements["max_batch_size"] > 1, (
        f"no request fusion observed (max batch {measurements['max_batch_size']})"
    )


def test_bench_serve_json_is_fresh(results_dir):
    import os

    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("ordering not guaranteed under xdist")
    path = results_dir / "BENCH_serve.json"
    assert path.exists(), "test_record_bench_serve_json did not run first"
    record = json.loads(path.read_text())
    assert record["schema"] == "bench-serve/v1"
